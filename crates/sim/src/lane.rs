//! Per-node event lanes: the unit of parallelism in the simulator.
//!
//! The cluster's nodes are partitioned round-robin over a fixed set of
//! lanes (node `i` lives in lane `i % lanes`). Each lane owns its nodes'
//! drivers and a private event queue, and processes events independently
//! within a bounded time *window* — the conservative-lookahead horizon of
//! a classic parallel discrete-event simulation. Nothing a lane does
//! during a window can affect another lane inside the same window,
//! because every cross-node effect (packet, stream message, trace entry)
//! travels through the network, whose minimum latency is exactly the
//! window length.
//!
//! Lanes therefore never touch shared state. A driver call's effects are
//! buffered as [`Emission`]s and [`TraceRecord`]s, each stamped with a
//! canonical key `(time, node, per-node seq)`. After every window the
//! coordinator sorts the buffers on that key and *commits* them: network
//! RNG draws, telemetry counters and trace appends all happen in commit
//! order. The canonical key depends only on simulated time and node
//! identity — never on lane assignment or worker scheduling — which is
//! what makes a run byte-identical at any worker count.

use bytes::Bytes;
use lifeguard_core::driver::{Driver, OwnedOutput, Sink};
use lifeguard_core::event::Event;
use lifeguard_core::node::Input;
use lifeguard_proto::{codec, compound, Ack, Message, Nack, NodeAddr, NodeName};

use crate::clock::SimTime;
use crate::event_queue::EventQueue;

/// Shape of the simulated population, shared by every lane.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Topology {
    /// Number of lanes (nodes are assigned round-robin).
    pub lanes: usize,
    /// Number of real (driver-backed) nodes: indices `0..real`.
    pub real: usize,
    /// Total roster size including phantom members: `real..total` are
    /// phantoms — table entries with no driver, answered by a canned
    /// responder at commit time.
    pub total: usize,
}

impl Topology {
    /// Lane that owns node `i`.
    pub fn lane_of(&self, node: usize) -> usize {
        node % self.lanes
    }

    /// Slot position of node `i` inside its lane.
    pub fn slot_of(&self, node: usize) -> usize {
        node / self.lanes
    }
}

/// An event scheduled inside one lane's private queue. Every variant
/// targets a node owned by that lane.
pub(crate) enum LaneEvent {
    /// A node's next timer deadline fell due.
    Wake {
        /// Global index of the node.
        node: usize,
    },
    /// A datagram arrives.
    Datagram {
        /// Global index of the receiving node.
        to: usize,
        /// Sender address (used for ack routing).
        from: NodeAddr,
        /// Raw packet bytes.
        payload: Bytes,
    },
    /// A stream message arrives.
    Stream {
        /// Global index of the receiving node.
        to: usize,
        /// Sender's advertised address.
        from: NodeAddr,
        /// The decoded message.
        msg: Message,
    },
    /// An anomaly window opens.
    PauseStart {
        /// Global index of the paused node.
        node: usize,
        /// When the window closes.
        until: SimTime,
    },
    /// An anomaly window closes.
    PauseEnd {
        /// Global index of the resuming node.
        node: usize,
    },
}

/// One simulated node: its driver plus anomaly state.
pub(crate) struct NodeSlot {
    /// The protocol core behind the shared sans-I/O driver harness.
    pub driver: Driver,
    pub paused_until: Option<SimTime>,
    pub crashed: bool,
    pub wake_marker: Option<SimTime>,
    /// Sends generated while paused ("block immediately before
    /// sending"); flushed in order at the end of the anomaly.
    // bounded: drained at PauseEnd; holds at most one anomaly's worth of buffered sends
    pub outbox: Vec<OwnedOutput>,
    /// Monotonic stamp shared by this node's emissions and trace
    /// records: the third component of the canonical commit key.
    pub emit_seq: u64,
}

/// A cross-node effect captured during a window, delivered at commit.
pub(crate) struct Emission {
    /// When the sender produced it.
    pub at: SimTime,
    /// Global index of the sending node.
    pub from: usize,
    /// Per-sender monotonic stamp (ties on `at` commit in send order).
    pub seq: u64,
    pub kind: EmitKind,
}

/// What was emitted.
pub(crate) enum EmitKind {
    /// A datagram to a real (or unknown) address.
    Packet {
        to: NodeAddr,
        payload: Bytes,
    },
    /// A stream message to a real (or unknown) address. `len` is the
    /// encoded length, precomputed in the lane so telemetry accounting
    /// at commit costs nothing.
    Stream {
        to: NodeAddr,
        msg: Message,
        len: usize,
    },
    /// A datagram addressed to a phantom member. The lane already ran
    /// the canned responder; `replies` are the packets the phantom
    /// answers with (each takes two network legs: out and back).
    PhantomPacket {
        phantom: usize,
        len: usize,
        // bounded: at most one reply per decoded compound part of a single datagram
        replies: Vec<(NodeAddr, Bytes)>,
    },
    /// A stream message to a phantom member: counted, then dropped
    /// (phantoms have no stream endpoint; anti-entropy simply misses).
    PhantomStream {
        len: usize,
    },
}

/// A membership conclusion captured during a window, appended to the
/// trace at commit in canonical `(at, reporter, seq)` order.
pub(crate) struct TraceRecord {
    pub at: SimTime,
    pub reporter: usize,
    pub seq: u64,
    pub event: Event,
}

/// One lane: a round-robin slice of the cluster's nodes plus their
/// private event queue and effect buffers.
#[derive(Default)]
pub(crate) struct Lane {
    pub queue: EventQueue<LaneEvent>,
    /// Slots for nodes `{i : i % lanes == this lane}`, at position
    /// `i / lanes`.
    // bounded: fixed at build time — ceil(real / lanes) slots, never grows
    pub slots: Vec<NodeSlot>,
    /// Effects buffered during the current window.
    // bounded: drained every window commit; holds one window's sends
    pub emissions: Vec<Emission>,
    /// Trace entries buffered during the current window.
    // bounded: drained every window commit; holds one window's conclusions
    pub records: Vec<TraceRecord>,
    /// The lane's local clock: the time of the event being dispatched,
    /// or the end of the last window the lane ran.
    pub now: SimTime,
}

impl Lane {
    /// Drains and dispatches every queued event with `at <= wend`, then
    /// parks the lane clock at the window end.
    pub fn run_window(&mut self, wend: SimTime, topo: Topology) {
        while let Some(at) = self.queue.peek_time() {
            if at > wend {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "lane time went backwards");
            self.now = at;
            self.dispatch(ev, topo);
        }
        self.now = wend;
    }

    fn dispatch(&mut self, ev: LaneEvent, topo: Topology) {
        let now = self.now;
        match ev {
            LaneEvent::Wake { node } => {
                let slot = &mut self.slots[topo.slot_of(node)];
                if slot.wake_marker != Some(now) {
                    return; // stale wake; a fresher one is queued
                }
                slot.wake_marker = None;
                if slot.crashed {
                    return;
                }
                // Timers run even during an anomaly: the paper's
                // instrumentation blocks only sends/receives, so the
                // agent's logic keeps evaluating wall-clock deadlines.
                // Sends it produces are captured in the outbox by the
                // sink.
                self.with_sink(node, topo, |driver, sink| driver.tick(now, sink));
                self.ensure_wake(node, topo);
            }
            LaneEvent::Datagram { to, from, payload } => {
                let slot = &mut self.slots[topo.slot_of(to)];
                if slot.crashed {
                    return;
                }
                if let Some(until) = slot.paused_until {
                    // Blocked on receive: queue for after the anomaly
                    // (same lane — the node does not move).
                    self.queue
                        .push(until, LaneEvent::Datagram { to, from, payload });
                    return;
                }
                // Zero-copy delivery: compound parts and blob fields
                // alias the datagram buffer. Malformed packets are
                // dropped, as a real deployment would.
                self.with_sink(to, topo, |driver, sink| {
                    let _ = driver.handle(Input::Datagram { from, payload }, now, sink);
                });
                self.ensure_wake(to, topo);
            }
            LaneEvent::Stream { to, from, msg } => {
                let slot = &mut self.slots[topo.slot_of(to)];
                if slot.crashed {
                    return;
                }
                if let Some(until) = slot.paused_until {
                    self.queue.push(until, LaneEvent::Stream { to, from, msg });
                    return;
                }
                self.with_sink(to, topo, |driver, sink| {
                    driver
                        .handle(Input::Stream { from, msg }, now, sink)
                        .expect("stream input is infallible");
                });
                self.ensure_wake(to, topo);
            }
            LaneEvent::PauseStart { node, until } => {
                let slot = &mut self.slots[topo.slot_of(node)];
                if !slot.crashed {
                    slot.paused_until = Some(until);
                    self.with_sink(node, topo, |driver, sink| {
                        driver
                            .handle(Input::IoBlocked { blocked: true }, now, sink)
                            .expect("io-blocked input is infallible");
                    });
                }
            }
            LaneEvent::PauseEnd { node } => {
                let slot = &mut self.slots[topo.slot_of(node)];
                if slot.crashed {
                    return;
                }
                // Only clear if this PauseEnd matches the active window
                // (an overlapping manual pause may extend it).
                if slot.paused_until.is_some_and(|u| u <= now) {
                    slot.paused_until = None;
                    // "The blocked sends ... are unblocked": flush
                    // everything the node tried to send while paused,
                    // then let the node evaluate its postponed probe
                    // deadlines (which fail, raising suspicions) and any
                    // other due timers.
                    let outbox = std::mem::take(&mut slot.outbox);
                    self.with_sink(node, topo, |driver, sink| {
                        for held in outbox {
                            sink.dispatch_owned(held);
                        }
                        driver
                            .handle(Input::IoBlocked { blocked: false }, now, sink)
                            .expect("io-blocked input is infallible");
                        driver.tick(now, sink);
                    });
                    self.ensure_wake(node, topo);
                }
            }
        }
    }

    /// Runs one driver call with a [`LaneSink`] assembled from split
    /// borrows of the lane's fields — the single place the shared
    /// driver harness attaches to the lane's effect buffers.
    pub fn with_sink<R>(
        &mut self,
        node: usize,
        topo: Topology,
        f: impl FnOnce(&mut Driver, &mut LaneSink<'_>) -> R,
    ) -> R {
        let now = self.now;
        let slot = &mut self.slots[topo.slot_of(node)];
        let paused = slot.paused_until.is_some();
        let NodeSlot {
            driver,
            outbox,
            emit_seq,
            ..
        } = slot;
        let mut sink = LaneSink {
            node,
            now,
            paused,
            topo,
            outbox,
            seq: emit_seq,
            emissions: &mut self.emissions,
            records: &mut self.records,
        };
        f(driver, &mut sink)
    }

    /// Arms a wake event at the node's next timer deadline unless an
    /// earlier one is already queued.
    pub fn ensure_wake(&mut self, node: usize, topo: Topology) {
        let now = self.now;
        let slot = &mut self.slots[topo.slot_of(node)];
        if slot.crashed {
            return;
        }
        let Some(wake) = slot.driver.next_wake() else {
            return;
        };
        let wake = wake.max(now);
        match slot.wake_marker {
            Some(existing) if existing <= wake => {}
            _ => {
                slot.wake_marker = Some(wake);
                self.queue.push(wake, LaneEvent::Wake { node });
            }
        }
    }
}

/// The lane-local [`Sink`]: packets and stream messages become buffered
/// [`Emission`]s (or a paused node's outbox entries), membership events
/// become buffered [`TraceRecord`]s. No shared cluster state is touched —
/// that is what lets lanes run on worker threads.
pub(crate) struct LaneSink<'a> {
    node: usize,
    now: SimTime,
    paused: bool,
    topo: Topology,
    outbox: &'a mut Vec<OwnedOutput>,
    seq: &'a mut u64,
    emissions: &'a mut Vec<Emission>,
    records: &'a mut Vec<TraceRecord>,
}

impl LaneSink<'_> {
    fn stamp(&mut self) -> u64 {
        let s = *self.seq;
        *self.seq += 1;
        s
    }

    fn emit(&mut self, kind: EmitKind) {
        let seq = self.stamp();
        self.emissions.push(Emission {
            at: self.now,
            from: self.node,
            seq,
            kind,
        });
    }

    fn emit_packet(&mut self, to: NodeAddr, payload: Bytes) {
        let kind = match phantom_index(to, self.topo) {
            Some(phantom) => EmitKind::PhantomPacket {
                phantom,
                len: payload.len(),
                replies: phantom_replies(phantom, self.topo, &payload),
            },
            None => EmitKind::Packet { to, payload },
        };
        self.emit(kind);
    }

    fn emit_stream(&mut self, to: NodeAddr, msg: Message) {
        let len = codec::encoded_len(&msg);
        let kind = match phantom_index(to, self.topo) {
            Some(_) => EmitKind::PhantomStream { len },
            None => EmitKind::Stream { to, msg, len },
        };
        self.emit(kind);
    }

    /// Dispatches a previously captured (outbox) output as if it were
    /// produced now — used when a pause ends and the blocked sends are
    /// released.
    pub fn dispatch_owned(&mut self, output: OwnedOutput) {
        match output {
            OwnedOutput::Packet { to, payload } => self.emit_packet(to, payload),
            OwnedOutput::Stream { to, msg } => self.emit_stream(to, msg),
            OwnedOutput::Event(e) => self.event(e),
        }
    }
}

impl Sink for LaneSink<'_> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        // A paused node blocks before sending: network effects are held
        // in its outbox until the anomaly ends. In-flight packets
        // outlive the borrow of the node's scratch, so both paths copy
        // the payload into an owned buffer.
        if self.paused {
            self.outbox.push(OwnedOutput::Packet {
                to,
                payload: Bytes::copy_from_slice(payload),
            });
        } else {
            self.emit_packet(to, Bytes::copy_from_slice(payload));
        }
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        if self.paused {
            self.outbox.push(OwnedOutput::Stream { to, msg });
        } else {
            self.emit_stream(to, msg);
        }
    }

    fn event(&mut self, event: Event) {
        // A paused node's membership conclusions are still logged (the
        // paper's analysis reads the agents' logs, which are written
        // regardless).
        let seq = self.stamp();
        self.records.push(TraceRecord {
            at: self.now,
            reporter: self.node,
            seq,
            event,
        });
    }
}

// ---------------------------------------------------------------------
// Phantom members
// ---------------------------------------------------------------------

/// Recovers a phantom member's index from its synthetic address, if the
/// address falls in the phantom range `real..total`.
fn phantom_index(to: NodeAddr, topo: Topology) -> Option<usize> {
    if topo.total == topo.real {
        return None; // no phantoms configured
    }
    if to.port() != crate::cluster::SIM_PORT {
        return None;
    }
    let std::net::IpAddr::V4(v4) = to.ip() else {
        return None;
    };
    let [a, b, c, d] = v4.octets();
    if a != 10 {
        return None;
    }
    let idx = ((b as usize) << 16) | ((c as usize) << 8) | d as usize;
    (topo.real..topo.total).contains(&idx).then_some(idx)
}

/// Parses `node-<i>` back to `i`.
fn node_index_of(name: &NodeName) -> Option<usize> {
    name.as_str().strip_prefix("node-")?.parse().ok()
}

/// The canned protocol behaviour of a phantom member: a permanently
/// healthy peer that answers probes and nothing else.
///
/// * `ping` naming the phantom → `ack` back to the prober.
/// * `ping-req` (indirect probe) → `ack` if the probe target is another
///   phantom (phantoms are always alive), else a `nack` when the origin
///   understands them: the *relay* is responsive even though it will not
///   actually probe a real target, which feeds the origin's Local Health
///   Multiplier exactly like a live relay that timed out.
/// * gossip / anti-entropy → consumed silently.
///
/// Replies are bare (non-compound) message encodings, which the receive
/// path accepts like any single-message datagram.
fn phantom_replies(phantom: usize, topo: Topology, payload: &[u8]) -> Vec<(NodeAddr, Bytes)> {
    let Ok(msgs) = compound::decode_packet(payload) else {
        return Vec::new(); // malformed packets are dropped, as real nodes drop them
    };
    let mut replies = Vec::new();
    for msg in msgs {
        match msg {
            Message::Ping(p) if node_index_of(&p.target) == Some(phantom) => {
                replies.push((
                    p.source_addr,
                    codec::encode_message(&Message::Ack(Ack { seq: p.seq })),
                ));
            }
            Message::IndirectPing(ip) => {
                let target_is_phantom = node_index_of(&ip.target)
                    .is_some_and(|t| (topo.real..topo.total).contains(&t));
                if target_is_phantom {
                    replies.push((
                        ip.source_addr,
                        codec::encode_message(&Message::Ack(Ack { seq: ip.seq })),
                    ));
                } else if ip.nack {
                    replies.push((
                        ip.source_addr,
                        codec::encode_message(&Message::Nack(Nack { seq: ip.seq })),
                    ));
                }
            }
            _ => {}
        }
    }
    replies
}
