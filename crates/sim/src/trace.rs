//! Event traces: everything every node concluded, with timestamps.
//!
//! The experiment harness mines traces for the paper's metrics: false
//! positives (failure events about healthy members), first-detection
//! latency and full-dissemination latency.

use lifeguard_core::event::Event;
use lifeguard_proto::NodeName;

use crate::clock::SimTime;

/// One recorded membership event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When the conclusion was reached.
    pub at: SimTime,
    /// Index of the node that reached it.
    pub reporter: usize,
    /// The conclusion.
    pub event: Event,
}

/// The full event trace of one simulation run.
///
/// Events are recorded in simulation order (non-decreasing time).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, reporter: usize, event: Event) {
        debug_assert!(
            self.events.last().map(|e| e.at <= at).unwrap_or(true),
            "trace must be recorded in time order"
        );
        self.events.push(TraceEvent {
            at,
            reporter,
            event,
        });
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All failure declarations (`MemberFailed`), as
    /// `(time, reporter, subject)`.
    pub fn failures(&self) -> impl Iterator<Item = (SimTime, usize, &NodeName)> {
        self.events.iter().filter_map(|e| match &e.event {
            Event::MemberFailed { name, .. } => Some((e.at, e.reporter, name)),
            _ => None,
        })
    }

    /// The first time any node declared `name` failed.
    pub fn first_failure_detection(&self, name: &str) -> Option<SimTime> {
        self.failures()
            .find(|(_, _, n)| n.as_str() == name)
            .map(|(at, _, _)| at)
    }

    /// The first time `reporter` declared `name` failed.
    pub fn failure_at_reporter(&self, name: &str, reporter: usize) -> Option<SimTime> {
        self.failures()
            .find(|(_, r, n)| *r == reporter && n.as_str() == name)
            .map(|(at, _, _)| at)
    }

    /// The time by which every reporter in `required` had declared `name`
    /// failed (full dissemination), or `None` if some never did.
    pub fn full_dissemination(&self, name: &str, required: &[usize]) -> Option<SimTime> {
        let mut missing: std::collections::HashSet<usize> = required.iter().copied().collect();
        if missing.is_empty() {
            return None;
        }
        for (at, reporter, n) in self.failures() {
            if n.as_str() == name {
                missing.remove(&reporter);
                if missing.is_empty() {
                    return Some(at);
                }
            }
        }
        None
    }

    /// Count of events matching a predicate (convenience for metrics).
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::Incarnation;

    fn failed(name: &str, from: &str) -> Event {
        Event::MemberFailed {
            name: name.into(),
            incarnation: Incarnation(1),
            from: from.into(),
        }
    }

    #[test]
    fn first_detection_is_earliest_failure() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), 0, failed("x", "node-0"));
        t.record(SimTime::from_secs(2), 1, failed("x", "node-1"));
        assert_eq!(t.first_failure_detection("x"), Some(SimTime::from_secs(1)));
        assert_eq!(t.first_failure_detection("y"), None);
        assert_eq!(
            t.failure_at_reporter("x", 1),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(t.failure_at_reporter("x", 9), None);
    }

    #[test]
    fn full_dissemination_requires_all_reporters() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), 0, failed("x", "a"));
        t.record(SimTime::from_secs(3), 2, failed("x", "a"));
        t.record(SimTime::from_secs(5), 1, failed("x", "a"));
        assert_eq!(
            t.full_dissemination("x", &[0, 1, 2]),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(
            t.full_dissemination("x", &[0, 2]),
            Some(SimTime::from_secs(3))
        );
        assert_eq!(t.full_dissemination("x", &[0, 3]), None);
        assert_eq!(t.full_dissemination("x", &[]), None);
    }

    #[test]
    fn non_failure_events_are_ignored_by_failures() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_secs(1),
            0,
            Event::MemberSuspected {
                name: "x".into(),
                from: "a".into(),
            },
        );
        assert_eq!(t.failures().count(), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(
            t.count(|e| matches!(e.event, Event::MemberSuspected { .. })),
            1
        );
    }
}
