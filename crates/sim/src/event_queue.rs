//! Deterministic discrete-event queue.
//!
//! A thin wrapper over the protocol core's hierarchical
//! [`TimerWheel`], so the
//! simulator and [`SwimNode`](lifeguard_core::node::SwimNode) share one
//! firing-semantics implementation: exact microsecond deadlines, events
//! at the same instant delivered in insertion order, and O(1) scheduling
//! with empty stretches of simulated time skipped via the wheel's
//! occupancy bitmaps instead of O(log n) heap churn. Whole-cluster
//! simulations remain bit-for-bit reproducible for a given seed.

use lifeguard_core::timer_wheel::TimerWheel;

use crate::clock::SimTime;

/// A time-ordered event queue with deterministic tie-breaking.
///
/// ```
/// use lifeguard_sim::event_queue::EventQueue;
/// use lifeguard_sim::clock::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.wheel.schedule(at, event);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.wheel.pop_earliest()
    }

    /// The time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // The wheel's cursor advances as events pop; later pushes at
        // later times must still come out in global time order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_secs(5), "d");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(900), "b");
        q.push(SimTime::from_secs(2), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
    }
}
