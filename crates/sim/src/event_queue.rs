//! Deterministic discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`: events at the same instant
//! are delivered in insertion order, which makes whole-cluster simulations
//! bit-for-bit reproducible for a given seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// ```
/// use lifeguard_sim::event_queue::EventQueue;
/// use lifeguard_sim::clock::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
    }
}
