//! Deterministic discrete-event simulator for Lifeguard/SWIM clusters.
//!
//! Reproduces the Lifeguard paper's evaluation environment: many protocol
//! instances on a loopback-like network, with *anomalies* — controlled
//! windows during which a node neither sends nor receives, emulating CPU
//! exhaustion or scheduling starvation (§V-D of the paper).
//!
//! Everything is seeded: the same [`cluster::ClusterBuilder`] inputs
//! produce bit-identical traces and telemetry, which is what makes the
//! experiment tables reproducible.
//!
//! ```
//! use lifeguard_sim::cluster::{ClusterBuilder, SimAction};
//! use lifeguard_sim::clock::SimDuration;
//! use lifeguard_core::config::Config;
//!
//! let mut cluster = ClusterBuilder::new(4).config(Config::lan()).seed(9).build();
//! cluster.run_for(SimDuration::from_secs(15));
//! assert!(cluster.converged());
//! cluster.apply(SimAction::Crash { node: 3 });
//! cluster.run_for(SimDuration::from_secs(30));
//! assert!(cluster.trace().first_failure_detection("node-3").is_some());
//! ```

pub mod anomaly;
pub mod clock;
pub mod cluster;
pub mod event_queue;
mod lane;
pub mod network;
pub mod telemetry;
pub mod trace;

pub use anomaly::AnomalySpec;
pub use cluster::{Cluster, ClusterBuilder, SimAction};
pub use network::NetworkConfig;
pub use trace::Trace;
