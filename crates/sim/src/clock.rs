//! Simulated time.
//!
//! The simulator reuses the protocol core's microsecond [`Time`] type; an
//! alias pair keeps simulator code and experiment harnesses readable.

pub use lifeguard_core::time::Time;

/// An instant in simulated time (microseconds since simulation start).
pub type SimTime = Time;

/// A span of simulated time.
pub type SimDuration = std::time::Duration;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_interoperate_with_core_time() {
        let t: SimTime = SimTime::from_millis(250);
        let d: SimDuration = SimDuration::from_millis(750);
        assert_eq!(t + d, SimTime::from_secs(1));
    }
}
