//! The simulated network.
//!
//! Models the loopback interface the paper's experiments ran over:
//! sub-millisecond latency with light jitter, optional datagram loss, and
//! optional pairwise partitions (used by partition-healing tests, not by
//! the paper's experiments).

use std::collections::HashSet;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Latency and loss parameters for the simulated network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Minimum one-way datagram latency.
    pub datagram_latency: Duration,
    /// Additional uniform jitter on datagram latency.
    pub datagram_jitter: Duration,
    /// Probability in `[0, 1]` that a datagram is silently dropped.
    pub datagram_loss: f64,
    /// Minimum one-way latency per stream message (connection setup is
    /// folded into this, so it is higher than the datagram latency).
    pub stream_latency: Duration,
    /// Additional uniform jitter on stream latency.
    pub stream_jitter: Duration,
}

impl NetworkConfig {
    /// Loopback profile: ~0.1–0.4 ms datagrams, no loss — the environment
    /// of the paper's experiments (128 agents in one VM).
    pub fn loopback() -> Self {
        NetworkConfig {
            datagram_latency: Duration::from_micros(100),
            datagram_jitter: Duration::from_micros(300),
            datagram_loss: 0.0,
            stream_latency: Duration::from_micros(500),
            stream_jitter: Duration::from_micros(500),
        }
    }

    /// A lossy LAN profile for failure-injection tests.
    pub fn lossy_lan(loss: f64) -> Self {
        NetworkConfig {
            datagram_latency: Duration::from_micros(500),
            datagram_jitter: Duration::from_millis(1),
            datagram_loss: loss,
            stream_latency: Duration::from_millis(2),
            stream_jitter: Duration::from_millis(2),
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::loopback()
    }
}

/// The fate of a datagram offered to the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Deliver after the given one-way delay.
    Deliver(Duration),
    /// Silently dropped (loss or partition).
    Dropped,
}

/// Simulated network state: latency sampling, loss and partitions.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: StdRng,
    /// Unordered pairs of partitioned node indices.
    partitions: HashSet<(usize, usize)>,
}

impl Network {
    /// Creates a network with its own deterministic RNG stream.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Network {
            config,
            rng: StdRng::seed_from_u64(seed),
            partitions: HashSet::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Severs (or restores) connectivity between two nodes in both
    /// directions.
    pub fn set_partitioned(&mut self, a: usize, b: usize, partitioned: bool) {
        let key = (a.min(b), a.max(b));
        if partitioned {
            self.partitions.insert(key);
        } else {
            self.partitions.remove(&key);
        }
    }

    /// Whether two nodes are currently partitioned.
    pub fn is_partitioned(&self, a: usize, b: usize) -> bool {
        self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Removes all partitions.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Decides the fate of one datagram from `from` to `to`.
    pub fn datagram(&mut self, from: usize, to: usize) -> Delivery {
        if self.is_partitioned(from, to) {
            return Delivery::Dropped;
        }
        if self.config.datagram_loss > 0.0 && self.rng.random::<f64>() < self.config.datagram_loss
        {
            return Delivery::Dropped;
        }
        Delivery::Deliver(self.sample(self.config.datagram_latency, self.config.datagram_jitter))
    }

    /// Decides the fate of one stream message from `from` to `to`.
    /// Streams are reliable: they are only lost to partitions.
    pub fn stream(&mut self, from: usize, to: usize) -> Delivery {
        if self.is_partitioned(from, to) {
            return Delivery::Dropped;
        }
        Delivery::Deliver(self.sample(self.config.stream_latency, self.config.stream_jitter))
    }

    fn sample(&mut self, base: Duration, jitter: Duration) -> Duration {
        if jitter.is_zero() {
            return base;
        }
        let j = self.rng.random_range(0..=jitter.as_micros() as u64);
        base + Duration::from_micros(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_within_latency_bounds() {
        let mut net = Network::new(NetworkConfig::loopback(), 1);
        for _ in 0..1000 {
            match net.datagram(0, 1) {
                Delivery::Deliver(d) => {
                    assert!(d >= Duration::from_micros(100));
                    assert!(d <= Duration::from_micros(400));
                }
                Delivery::Dropped => panic!("loopback must not drop"),
            }
        }
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let mut net = Network::new(NetworkConfig::lossy_lan(0.3), 7);
        let mut dropped = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if net.datagram(0, 1) == Delivery::Dropped {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn partitions_drop_both_directions_and_heal() {
        let mut net = Network::new(NetworkConfig::loopback(), 3);
        net.set_partitioned(2, 5, true);
        assert!(net.is_partitioned(5, 2));
        assert_eq!(net.datagram(2, 5), Delivery::Dropped);
        assert_eq!(net.datagram(5, 2), Delivery::Dropped);
        assert_eq!(net.stream(5, 2), Delivery::Dropped);
        assert!(!matches!(net.datagram(2, 3), Delivery::Dropped));

        net.heal_all();
        assert!(!net.is_partitioned(2, 5));
        assert!(!matches!(net.datagram(2, 5), Delivery::Dropped));
    }

    #[test]
    fn streams_are_reliable_under_loss() {
        let mut net = Network::new(NetworkConfig::lossy_lan(0.9), 9);
        for _ in 0..100 {
            assert!(matches!(net.stream(0, 1), Delivery::Deliver(_)));
        }
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = Network::new(NetworkConfig::loopback(), 42);
        let mut b = Network::new(NetworkConfig::loopback(), 42);
        for _ in 0..100 {
            assert_eq!(a.datagram(0, 1), b.datagram(0, 1));
        }
    }
}
