//! Anomaly injection: controlled periods of blocked message processing.
//!
//! The paper induces slow message processing by "pausing the sending and
//! receiving of protocol messages at selected group members for well
//! defined periods of time" (§V-D). Each pause window is an *anomaly*.
//! Three schedules reproduce the paper's workloads:
//!
//! * [`AnomalySpec::Threshold`] — one anomaly of duration `D` (the
//!   Threshold experiment, §V-D1).
//! * [`AnomalySpec::Interval`] — anomalies of duration `D` separated by
//!   normal operation of length `I`, repeating until the experiment ends
//!   (the Interval experiment, §V-D2).
//! * [`AnomalySpec::Stress`] — randomized duty-cycle starvation
//!   approximating CPU exhaustion by an oversubscribed workload
//!   (Figure 1's `stress` scenario): long pauses with short slices of
//!   progress in between.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::clock::SimTime;

/// One pause window `[start, end)` during which a node neither sends nor
/// receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PauseWindow {
    /// When the node blocks.
    pub start: SimTime,
    /// When the node resumes (and processes everything queued).
    pub end: SimTime,
}

/// A schedule of anomalies for one node.
#[derive(Clone, Debug)]
pub enum AnomalySpec {
    /// A single anomaly: block at `start` for `duration`.
    Threshold {
        /// Anomaly onset.
        start: SimTime,
        /// Anomaly length (the paper's `D`).
        duration: Duration,
    },
    /// Cyclic anomalies: block for `duration`, run for `interval`,
    /// repeat. The cycle starts at `start`; the last anomaly is the first
    /// one that *begins* at or after `until` (the paper runs "until at
    /// least 120 seconds have passed" and ends after the next anomalous
    /// period).
    Interval {
        /// First anomaly onset.
        start: SimTime,
        /// Anomaly length (the paper's `D`).
        duration: Duration,
        /// Normal-operation gap between anomalies (the paper's `I`).
        interval: Duration,
        /// No new anomaly starts at or after this instant.
        until: SimTime,
    },
    /// Randomized duty-cycle starvation between `start` and `end`:
    /// pauses uniform in `[pause_min, pause_max]`, separated by run
    /// slices uniform in `[run_min, run_max]`.
    Stress {
        /// Starvation onset.
        start: SimTime,
        /// Starvation end.
        end: SimTime,
        /// Shortest pause.
        pause_min: Duration,
        /// Longest pause.
        pause_max: Duration,
        /// Shortest run slice.
        run_min: Duration,
        /// Longest run slice.
        run_max: Duration,
    },
}

impl AnomalySpec {
    /// The stress profile used for the Figure 1 reproduction. A
    /// 128-process `stress` workload on a single-core VM leaves the
    /// agent ~1/129 of the CPU: it is starved for many seconds at a
    /// time and progresses in slices of tens of milliseconds. The
    /// pauses regularly exceed the n=100 suspicion timeout (~10 s), so
    /// the starved agent's wrong suspicions expire before it processes
    /// the refutations — the paper's Figure 1 false-positive engine.
    pub fn cpu_stress(start: SimTime, end: SimTime) -> AnomalySpec {
        AnomalySpec::Stress {
            start,
            end,
            pause_min: Duration::from_millis(8000),
            pause_max: Duration::from_millis(20000),
            run_min: Duration::from_millis(20),
            run_max: Duration::from_millis(100),
        }
    }

    /// Expands the schedule into concrete pause windows, using `seed` for
    /// the stochastic [`AnomalySpec::Stress`] variant.
    pub fn windows(&self, seed: u64) -> Vec<PauseWindow> {
        match *self {
            AnomalySpec::Threshold { start, duration } => vec![PauseWindow {
                start,
                end: start + duration,
            }],
            AnomalySpec::Interval {
                start,
                duration,
                interval,
                until,
            } => {
                let mut windows = Vec::new();
                let mut t = start;
                loop {
                    windows.push(PauseWindow {
                        start: t,
                        end: t + duration,
                    });
                    // The paper: the test ends at the end of the next
                    // anomalous period after `until` has passed.
                    if t >= until {
                        break;
                    }
                    t = t + duration + interval;
                    if windows.len() > 1_000_000 {
                        panic!("interval anomaly schedule exploded");
                    }
                }
                windows
            }
            AnomalySpec::Stress {
                start,
                end,
                pause_min,
                pause_max,
                run_min,
                run_max,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut windows = Vec::new();
                let mut t = start;
                while t < end {
                    let pause = sample_range(&mut rng, pause_min, pause_max);
                    let stop = (t + pause).min(end);
                    windows.push(PauseWindow { start: t, end: stop });
                    let run = sample_range(&mut rng, run_min, run_max);
                    t = stop + run;
                }
                windows
            }
        }
    }
}

fn sample_range(rng: &mut StdRng, min: Duration, max: Duration) -> Duration {
    if max <= min {
        return min;
    }
    Duration::from_micros(rng.random_range(min.as_micros() as u64..=max.as_micros() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_produces_one_window() {
        let spec = AnomalySpec::Threshold {
            start: SimTime::from_secs(15),
            duration: Duration::from_millis(2048),
        };
        let w = spec.windows(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start, SimTime::from_secs(15));
        assert_eq!(w[0].end, SimTime::from_millis(17048));
    }

    #[test]
    fn interval_repeats_until_deadline_then_one_more() {
        let spec = AnomalySpec::Interval {
            start: SimTime::from_secs(15),
            duration: Duration::from_secs(2),
            interval: Duration::from_secs(8),
            until: SimTime::from_secs(45),
        };
        let w = spec.windows(0);
        // Onsets at 15, 25, 35, 45 — the last one starts at `until`.
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].start, SimTime::from_secs(15));
        assert_eq!(w[1].start, SimTime::from_secs(25));
        assert_eq!(w[3].start, SimTime::from_secs(45));
        // Windows never overlap.
        for pair in w.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn stress_windows_cover_duty_cycles() {
        let spec = AnomalySpec::cpu_stress(SimTime::from_secs(10), SimTime::from_secs(70));
        let w = spec.windows(42);
        assert!(!w.is_empty());
        for pair in w.windows(2) {
            assert!(pair[0].end <= pair[1].start, "windows overlap");
            // Run slices are short (20–100 ms).
            let gap = pair[1].start - pair[0].end;
            assert!(gap >= Duration::from_millis(20) && gap <= Duration::from_millis(100));
        }
        for win in &w {
            assert!(win.end <= SimTime::from_secs(70));
            assert!(win.start >= SimTime::from_secs(10));
            // Pauses are 8–20 s (except the final clamped one).
            let len = win.end - win.start;
            assert!(len <= Duration::from_secs(20));
        }
        // Determinism.
        assert_eq!(w, spec.windows(42));
        assert_ne!(w, spec.windows(43));
    }
}
