//! Message and byte accounting.
//!
//! Reproduces Consul's telemetry as used for Table VI: the number of
//! (compound) messages sent — a compound packet counts as one message —
//! and the total bytes sent, per node and aggregated.

/// Counters for one node.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NodeTelemetry {
    /// Datagrams sent (compound packet = 1).
    pub datagrams_sent: u64,
    /// Total datagram payload bytes sent.
    pub datagram_bytes: u64,
    /// Stream messages sent (push-pull halves, fallback probes).
    pub streams_sent: u64,
    /// Total stream payload bytes sent.
    pub stream_bytes: u64,
}

impl NodeTelemetry {
    /// Total messages sent on either transport.
    pub fn messages(&self) -> u64 {
        self.datagrams_sent + self.streams_sent
    }

    /// Total bytes sent on either transport.
    pub fn bytes(&self) -> u64 {
        self.datagram_bytes + self.stream_bytes
    }
}

/// Counters for a whole cluster.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    nodes: Vec<NodeTelemetry>,
}

impl Telemetry {
    /// Creates counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Telemetry {
            nodes: vec![NodeTelemetry::default(); n],
        }
    }

    /// Records one datagram of `bytes` sent by `node`.
    pub fn record_datagram(&mut self, node: usize, bytes: usize) {
        let t = &mut self.nodes[node];
        t.datagrams_sent += 1;
        t.datagram_bytes += bytes as u64;
    }

    /// Records one stream message of `bytes` sent by `node`.
    pub fn record_stream(&mut self, node: usize, bytes: usize) {
        let t = &mut self.nodes[node];
        t.streams_sent += 1;
        t.stream_bytes += bytes as u64;
    }

    /// Per-node counters.
    pub fn node(&self, i: usize) -> NodeTelemetry {
        self.nodes[i]
    }

    /// Sum over all nodes.
    pub fn total(&self) -> NodeTelemetry {
        let mut sum = NodeTelemetry::default();
        for t in &self.nodes {
            sum.datagrams_sent += t.datagrams_sent;
            sum.datagram_bytes += t.datagram_bytes;
            sum.streams_sent += t.streams_sent;
            sum.stream_bytes += t.stream_bytes;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut t = Telemetry::new(3);
        t.record_datagram(0, 100);
        t.record_datagram(0, 50);
        t.record_stream(2, 1000);
        assert_eq!(t.node(0).datagrams_sent, 2);
        assert_eq!(t.node(0).datagram_bytes, 150);
        assert_eq!(t.node(1), NodeTelemetry::default());
        assert_eq!(t.node(2).streams_sent, 1);

        let total = t.total();
        assert_eq!(total.messages(), 3);
        assert_eq!(total.bytes(), 1150);
    }
}
