//! Failure-injection tests for the simulator: loss sweeps, partition
//! storms, pause storms and the stress anomaly model.

use std::time::Duration;

use lifeguard_core::config::Config;
use lifeguard_sim::anomaly::AnomalySpec;
use lifeguard_sim::clock::SimTime;
use lifeguard_sim::cluster::{ClusterBuilder, SimAction};
use lifeguard_sim::network::NetworkConfig;

/// Convergence and crash detection hold across a sweep of datagram loss
/// rates (SWIM's robustness property).
#[test]
fn loss_sweep_convergence_and_detection() {
    for (i, loss) in [0.0, 0.02, 0.05, 0.10, 0.20].into_iter().enumerate() {
        let mut cluster = ClusterBuilder::new(10)
            .config(Config::lan().lifeguard())
            .network(NetworkConfig::lossy_lan(loss))
            .seed(100 + i as u64)
            .build();
        cluster.run_for(Duration::from_secs(25));
        assert!(
            cluster.converged(),
            "no convergence at loss={loss}"
        );
        cluster.apply(SimAction::Crash { node: 9 });
        cluster.run_for(Duration::from_secs(60));
        assert!(
            cluster.trace().first_failure_detection("node-9").is_some(),
            "crash undetected at loss={loss}"
        );
    }
}

/// Under 100% loss nothing converges — the filter works at all.
#[test]
fn total_loss_prevents_convergence() {
    let mut config = NetworkConfig::lossy_lan(1.0);
    config.datagram_loss = 1.0;
    let mut cluster = ClusterBuilder::new(4)
        .config(Config::lan())
        .network(config)
        .seed(3)
        .build();
    cluster.run_for(Duration::from_secs(20));
    // Streams (TCP) still work, so the join push-pull may have spread
    // some state, but the probe/gossip layer is fully dark; at minimum
    // the cluster must not look healthy.
    assert!(!cluster.converged() || cluster.len() == 1);
}

/// Pausing many nodes simultaneously (a rack-level stall) does not kill
/// any of them permanently under Lifeguard: all recover.
#[test]
fn mass_pause_storm_recovers() {
    let mut cluster = ClusterBuilder::new(16)
        .config(Config::lan().lifeguard())
        .seed(7)
        .build();
    cluster.run_for(Duration::from_secs(15));
    for node in 4..12 {
        cluster.apply(SimAction::Pause {
            node,
            duration: Duration::from_secs(6),
        });
    }
    cluster.run_for(Duration::from_secs(60));
    for i in 0..16 {
        let seen = cluster.nodes_seeing_alive(&format!("node-{i}")).len();
        assert_eq!(seen, 16, "node-{i} not universally alive after storm");
    }
}

/// Repeated asymmetric partitions with healing always re-converge.
#[test]
fn repeated_partitions_heal() {
    let mut cluster = ClusterBuilder::new(8)
        .config(Config::lan().lifeguard())
        .seed(13)
        .build();
    cluster.run_for(Duration::from_secs(15));
    for round in 0..3 {
        let victim = 1 + round * 2;
        for other in 0..8 {
            if other != victim {
                cluster.apply(SimAction::Partition { a: victim, b: other });
            }
        }
        cluster.run_for(Duration::from_secs(30));
        cluster.apply(SimAction::HealPartitions);
        // Reconnect interval is 30 s: give two periods.
        let mut healed = false;
        for _ in 0..30 {
            cluster.run_for(Duration::from_secs(5));
            if cluster.converged() {
                healed = true;
                break;
            }
        }
        assert!(healed, "round {round}: partition never healed");
    }
}

/// The stress (duty-cycle starvation) anomaly produces false positives
/// under SWIM on a small cluster — the Figure 1 mechanism — and the
/// stressed nodes recover afterwards.
#[test]
fn stress_anomaly_produces_swim_fps_and_recovers() {
    let mut cluster = ClusterBuilder::new(24)
        .config(Config::lan())
        .seed(17)
        .anomaly(
            3,
            AnomalySpec::cpu_stress(SimTime::from_secs(15), SimTime::from_secs(75)),
        )
        .anomaly(
            9,
            AnomalySpec::cpu_stress(SimTime::from_secs(15), SimTime::from_secs(75)),
        )
        .build();
    cluster.run_for(Duration::from_secs(110));
    // The stressed nodes were repeatedly suspected/declared; after the
    // stress ends everyone must be alive everywhere again.
    for i in 0..24 {
        assert_eq!(
            cluster.nodes_seeing_alive(&format!("node-{i}")).len(),
            24,
            "node-{i} not recovered after stress"
        );
    }
}

/// Crashing the join seed after bootstrap does not disturb the rest.
#[test]
fn seed_crash_after_bootstrap_is_tolerated() {
    let mut cluster = ClusterBuilder::new(10)
        .config(Config::lan().lifeguard())
        .seed(23)
        .build();
    cluster.run_for(Duration::from_secs(15));
    cluster.apply(SimAction::Crash { node: 0 });
    cluster.run_for(Duration::from_secs(40));
    assert!(
        cluster.trace().first_failure_detection("node-0").is_some(),
        "seed crash undetected"
    );
    // The remaining 9 still see one another.
    for i in 1..10 {
        let seen = cluster.nodes_seeing_alive(&format!("node-{i}"));
        assert!(
            seen.iter().filter(|&&r| r != 0).count() == 9,
            "node-{i} lost by survivors"
        );
    }
}

/// Back-to-back anomalies on the same node (overlapping schedule edge
/// case) behave sanely.
#[test]
fn adjacent_anomaly_windows() {
    let mut cluster = ClusterBuilder::new(6)
        .config(Config::lan().lifeguard())
        .seed(29)
        .anomaly(
            2,
            AnomalySpec::Interval {
                start: SimTime::from_secs(10),
                duration: Duration::from_secs(2),
                interval: Duration::from_millis(1),
                until: SimTime::from_secs(30),
            },
        )
        .build();
    cluster.run_for(Duration::from_secs(60));
    assert_eq!(cluster.nodes_seeing_alive("node-2").len(), 6);
}
