//! Randomized chaos testing: arbitrary small clusters with arbitrary
//! pause schedules must always return to a fully-alive, converged state
//! once anomalies stop (no healthy member is ever permanently lost),
//! and runs are deterministic per seed.

use std::time::Duration;

use lifeguard_core::config::Config;
use lifeguard_sim::anomaly::AnomalySpec;
use lifeguard_sim::clock::SimTime;
use lifeguard_sim::cluster::ClusterBuilder;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Chaos {
    n: usize,
    seed: u64,
    lifeguard: bool,
    /// (node, start_s, duration_ms) pause windows, all within [12, 40) s.
    pauses: Vec<(usize, u8, u16)>,
}

fn chaos_strategy() -> impl Strategy<Value = Chaos> {
    (4usize..10, any::<u64>(), any::<bool>())
        .prop_flat_map(|(n, seed, lifeguard)| {
            let pause = (0..n, 12u8..32, 100u16..8000);
            proptest::collection::vec(pause, 0..5).prop_map(move |pauses| Chaos {
                n,
                seed,
                lifeguard,
                pauses,
            })
        })
}

fn run_chaos(chaos: &Chaos) -> (Vec<usize>, u64) {
    let config = if chaos.lifeguard {
        Config::lan().lifeguard()
    } else {
        Config::lan()
    };
    let mut builder = ClusterBuilder::new(chaos.n).config(config).seed(chaos.seed);
    for &(node, start_s, dur_ms) in &chaos.pauses {
        builder = builder.anomaly(
            node,
            AnomalySpec::Threshold {
                start: SimTime::from_secs(start_s as u64),
                duration: Duration::from_millis(dur_ms as u64),
            },
        );
    }
    let mut cluster = builder.build();
    // All pauses end by 40 s; give suspicion timeouts + refutation +
    // reconnect two full cycles to settle.
    cluster.run_for(Duration::from_secs(140));
    let alive_views: Vec<usize> = (0..chaos.n)
        .map(|i| cluster.nodes_seeing_alive(&format!("node-{i}")).len())
        .collect();
    (alive_views, cluster.telemetry().total().messages())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// No pause schedule may permanently remove a healthy member from
    /// any view.
    #[test]
    fn cluster_always_recovers(chaos in chaos_strategy()) {
        let (alive_views, _) = run_chaos(&chaos);
        for (i, &seen) in alive_views.iter().enumerate() {
            prop_assert_eq!(
                seen,
                chaos.n,
                "node-{} alive in only {}/{} views ({:?})",
                i,
                seen,
                chaos.n,
                &chaos
            );
        }
    }

    /// Identical chaos inputs produce identical outcomes.
    #[test]
    fn chaos_is_deterministic(chaos in chaos_strategy()) {
        prop_assert_eq!(run_chaos(&chaos), run_chaos(&chaos));
    }
}
