//! `lifeguard-repro`: regenerate the Lifeguard paper's tables and figures.
//!
//! ```text
//! USAGE:
//!   lifeguard-repro <artifact> [--scale quick|default|paper] [--seed N] [--csv-dir DIR] [--quiet]
//!
//! ARTIFACTS:
//!   fig1     False positives from CPU exhaustion (Figure 1)
//!   table4   Aggregated false positives (Table IV)
//!   fig2     Total FP vs concurrent anomalies (Figure 2)
//!   fig3     FP at healthy members vs concurrent anomalies (Figure 3)
//!   table5   Detection/dissemination latency (Table V)
//!   table6   Message load (Table VI)
//!   table7   Alpha/beta tuning trade-off (Table VII)
//!   fp       table4 + fig2 + fig3 + table6 from one Interval suite
//!   ablate-k Sweep LHA-Suspicion's confirmation count K (extension)
//!   ablate-s Sweep the LHM saturation limit S (extension)
//!   smoke    SLO smoke sweep: detection-latency + false-positive curves,
//!            gated on checked-in thresholds; writes target/METRICS.json
//!            and per-node snapshots under target/metrics/
//!   all      Everything above (except smoke)
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use lifeguard_experiments::report::Table;
use lifeguard_experiments::scenario::Scale;
use lifeguard_experiments::{slo, tables};

struct Args {
    artifact: String,
    scale: Scale,
    seed: u64,
    csv_dir: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let artifact = args.next().ok_or("missing artifact argument")?;
    let mut parsed = Args {
        artifact,
        scale: Scale::Quick,
        seed: 42,
        csv_dir: None,
        quiet: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                parsed.scale =
                    Scale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--csv-dir" => {
                parsed.csv_dir = Some(args.next().ok_or("--csv-dir needs a value")?);
            }
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn emit(table: &Table, slug: &str, csv_dir: Option<&str>) {
    println!("{}", table.render());
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{slug}.csv");
        if let Err(e) =
            std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

/// Writes the machine-readable smoke artifacts: the gated SLO report
/// as `target/METRICS.json` and each node's binary snapshot under
/// `target/metrics/` (the input format of the `swim-metrics`
/// aggregator, so the whole export path is exercised end to end).
fn write_smoke_artifacts(report: &slo::SmokeReport) -> std::io::Result<()> {
    std::fs::create_dir_all("target/metrics")?;
    std::fs::write("target/METRICS.json", report.to_json())?;
    for (name, snap) in report.aggregate.nodes() {
        std::fs::write(format!("target/metrics/{name}.snap"), snap.encode())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: lifeguard-repro <fig1|table4|fig2|fig3|table5|table6|table7|fp|ablate-k|ablate-s|smoke|all> [--scale quick|default|paper] [--seed N] [--csv-dir DIR] [--quiet]");
            return ExitCode::FAILURE;
        }
    };
    let quiet = args.quiet;
    let mut progress = move |line: &str| {
        if !quiet {
            let _ = writeln!(std::io::stderr(), "  {line}");
        }
    };

    let csv = args.csv_dir.as_deref();
    let need_interval = matches!(
        args.artifact.as_str(),
        "table4" | "fig2" | "fig3" | "table6" | "fp" | "all"
    );
    let interval_records = if need_interval {
        eprintln!(
            "running Interval suite (scale {:?}, alpha=5, beta=6)...",
            args.scale
        );
        Some(tables::run_interval_suite(
            args.scale,
            5.0,
            6.0,
            args.seed,
            &mut progress,
        ))
    } else {
        None
    };

    match args.artifact.as_str() {
        "fig1" => {
            eprintln!("running Figure 1 stress scenario...");
            emit(
                &tables::fig1(args.scale, args.seed, &mut progress),
                "fig1",
                csv,
            );
        }
        "table4" => emit(
            &tables::table4(interval_records.as_ref().unwrap()),
            "table4",
            csv,
        ),
        "fig2" => emit(
            &tables::fig2(interval_records.as_ref().unwrap()),
            "fig2",
            csv,
        ),
        "fig3" => emit(
            &tables::fig3(interval_records.as_ref().unwrap()),
            "fig3",
            csv,
        ),
        "table6" => emit(
            &tables::table6(interval_records.as_ref().unwrap()),
            "table6",
            csv,
        ),
        "fp" => {
            let records = interval_records.as_ref().unwrap();
            emit(&tables::table4(records), "table4", csv);
            emit(&tables::fig2(records), "fig2", csv);
            emit(&tables::fig3(records), "fig3", csv);
            emit(&tables::table6(records), "table6", csv);
        }
        "table5" => {
            eprintln!("running Threshold suite (scale {:?})...", args.scale);
            let records =
                tables::run_threshold_suite(args.scale, 5.0, 6.0, args.seed, &mut progress);
            emit(&tables::table5(&records), "table5", csv);
        }
        "table7" => {
            eprintln!("running alpha/beta sweep (scale {:?})...", args.scale);
            emit(
                &tables::table7(args.scale, args.seed, &mut progress),
                "table7",
                csv,
            );
        }
        "ablate-k" => {
            eprintln!("running K ablation (scale {:?})...", args.scale);
            emit(
                &tables::ablation_k(args.scale, args.seed, &mut progress),
                "ablate_k",
                csv,
            );
        }
        "smoke" => {
            eprintln!("running SLO smoke sweep (seed {})...", args.seed);
            let report = slo::run_smoke(args.seed, &mut progress);
            println!("{}", report.render());
            if let Err(e) = write_smoke_artifacts(&report) {
                eprintln!("error: could not write metrics artifacts: {e}");
                return ExitCode::FAILURE;
            }
            if !report.pass() {
                eprintln!("SLO gate FAILED ({} violation(s))", report.violations.len());
                return ExitCode::FAILURE;
            }
            eprintln!("SLO gate passed; wrote target/METRICS.json");
        }
        "ablate-s" => {
            eprintln!("running S ablation (scale {:?})...", args.scale);
            emit(
                &tables::ablation_s(args.scale, args.seed, &mut progress),
                "ablate_s",
                csv,
            );
        }
        "all" => {
            let records = interval_records.as_ref().unwrap();
            emit(&tables::table4(records), "table4", csv);
            emit(&tables::fig2(records), "fig2", csv);
            emit(&tables::fig3(records), "fig3", csv);
            emit(&tables::table6(records), "table6", csv);
            eprintln!("running Threshold suite (scale {:?})...", args.scale);
            let thresh =
                tables::run_threshold_suite(args.scale, 5.0, 6.0, args.seed, &mut progress);
            emit(&tables::table5(&thresh), "table5", csv);
            eprintln!("running Figure 1 stress scenario...");
            emit(
                &tables::fig1(args.scale, args.seed, &mut progress),
                "fig1",
                csv,
            );
            eprintln!("running alpha/beta sweep (scale {:?})...", args.scale);
            emit(
                &tables::table7(args.scale, args.seed, &mut progress),
                "table7",
                csv,
            );
        }
        other => {
            eprintln!("error: unknown artifact {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
