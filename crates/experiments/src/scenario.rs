//! Experiment scenarios (paper §V-D).
//!
//! Three workloads drive the evaluation:
//!
//! * **Threshold** — one synchronized burst of `C` concurrent anomalies of
//!   duration `D` (Table II grid). Measures detection and dissemination
//!   latency for true positives.
//! * **Interval** — cyclic anomalies: blocked for `D`, normal for `I`,
//!   repeating until 120 s have passed (Table III grid). Measures false
//!   positives and message load.
//! * **Stress** — Figure 1's scenario: a 100-node cluster where a subset
//!   suffers duty-cycle CPU starvation for five minutes.
//!
//! Parameter value sets are encoded verbatim from Tables II and III; the
//! [`Scale`] knob subsamples them so the full reproduction fits a laptop
//! budget while `--scale paper` runs the original grid.
//!
//! Every scenario drives its nodes through the simulator's instance of
//! the shared sans-I/O `Driver` harness (`lifeguard_core::driver`) — the
//! same dispatch loop the real UDP/TCP agent runs — and validates the
//! protocol configuration up front, so a nonsense parameter combination
//! fails the run immediately instead of skewing a table.

use std::time::Duration;

use lifeguard_core::config::Config;
use lifeguard_sim::anomaly::AnomalySpec;
use lifeguard_sim::clock::SimTime;
use lifeguard_sim::cluster::{Cluster, ClusterBuilder};
use lifeguard_sim::network::NetworkConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Concurrent-anomaly counts `C` (Tables II & III).
pub const C_VALUES: [usize; 9] = [1, 4, 8, 12, 16, 20, 24, 28, 32];
/// Anomaly durations `D` in milliseconds (Tables II & III).
pub const D_VALUES_MS: [u64; 6] = [128, 512, 2048, 8192, 16384, 32768];
/// Inter-anomaly intervals `I` in milliseconds (Table III).
pub const I_VALUES_MS: [u64; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

/// Cluster size used by the Threshold/Interval experiments (§V-D1).
pub const CLUSTER_SIZE: usize = 128;
/// Quiesce time before anomalies start (§V-D1).
pub const QUIESCE: Duration = Duration::from_secs(15);
/// Minimum experiment duration measured from the start (§V-D2).
pub const MIN_RUN: Duration = Duration::from_secs(120);
/// Cluster size of the Figure 1 stress scenario.
pub const STRESS_CLUSTER_SIZE: usize = 100;
/// Stress workload duration in the Figure 1 scenario ("run for 5 minutes").
pub const STRESS_DURATION: Duration = Duration::from_secs(300);

/// How much of the paper's parameter grid to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small subsample; minutes of wall-clock. Good for smoke checks.
    Quick,
    /// Most of the grid with one repetition; the default for
    /// regenerating the tables.
    Default,
    /// The paper's full grid with 10 repetitions. Hours of wall-clock.
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The `C` values exercised at this scale.
    pub fn c_values(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[4, 16, 32],
            Scale::Default | Scale::Paper => &C_VALUES,
        }
    }

    /// The `D` values exercised at this scale (milliseconds).
    pub fn d_values_ms(self) -> &'static [u64] {
        match self {
            Scale::Quick => &[2048, 16384],
            Scale::Default => &[512, 2048, 8192, 16384, 32768],
            Scale::Paper => &D_VALUES_MS,
        }
    }

    /// The `I` values exercised at this scale (milliseconds).
    pub fn i_values_ms(self) -> &'static [u64] {
        match self {
            Scale::Quick => &[64, 4096],
            Scale::Default => &[4, 64, 1024, 16384],
            Scale::Paper => &I_VALUES_MS,
        }
    }

    /// Repetitions per parameter combination.
    pub fn reps(self) -> u64 {
        match self {
            Scale::Quick | Scale::Default => 1,
            Scale::Paper => 10,
        }
    }

    /// The stress-node counts for the Figure 1 scenario.
    pub fn stress_counts(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[4, 16, 32],
            Scale::Default | Scale::Paper => &[1, 2, 4, 8, 16, 24, 32],
        }
    }
}

/// What a single simulation run produced, reduced to the quantities the
/// paper reports.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Indices of the anomalous nodes.
    pub anomalous: Vec<usize>,
    /// Cluster size.
    pub n: usize,
    /// Failure events about healthy members, at any member (`FP`).
    pub fp_events: u64,
    /// Failure events about healthy members, reported by healthy members
    /// (`FP-`).
    pub fp_healthy_events: u64,
    /// Per anomalous node: latency from anomaly start to first detection
    /// by a healthy member, if it was detected at all.
    pub first_detect: Vec<Option<Duration>>,
    /// Per anomalous node: latency from anomaly start to every healthy
    /// member having declared it failed.
    pub full_dissem: Vec<Option<Duration>>,
    /// Total (compound) messages sent by all members.
    pub msgs_sent: u64,
    /// Total bytes sent by all members.
    pub bytes_sent: u64,
}

/// The network model used by all experiments: loopback latency with a
/// small uniform datagram loss rate.
///
/// The paper ran 128 agents in one VM; under the bursty load the
/// experiments generate, such a host drops a small fraction of UDP
/// datagrams (kernel buffer overruns). This loss is what occasionally
/// lets a refutation lose the race against a suspicion at a healthy
/// member, producing the paper's small-but-nonzero FP- counts.
pub fn experiment_network() -> NetworkConfig {
    NetworkConfig {
        datagram_loss: 0.005,
        ..NetworkConfig::loopback()
    }
}

/// Picks `c` distinct anomalous node indices at random (never the join
/// seed, node 0, so the cluster bootstrap is never the victim — the paper
/// deploys no distinguished node, but our join seed is only special
/// during the first seconds).
fn pick_anomalous(n: usize, c: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (1..n).collect();
    for i in 0..c.min(idx.len()) {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx.truncate(c);
    idx.sort_unstable();
    idx
}

/// Extracts the paper's metrics from a finished cluster.
pub(crate) fn extract(cluster: &Cluster, anomalous: &[usize], anomaly_start: SimTime) -> RunOutcome {
    let n = cluster.len();
    let is_anomalous = |i: usize| anomalous.binary_search(&i).is_ok();
    let healthy: Vec<usize> = (0..n).filter(|&i| !is_anomalous(i)).collect();

    let mut fp = 0u64;
    let mut fp_healthy = 0u64;
    for (_, reporter, subject) in cluster.trace().failures() {
        let subject_idx: usize = subject
            .as_str()
            .strip_prefix("node-")
            .and_then(|s| s.parse().ok())
            .expect("simulated node names are node-<i>");
        if !is_anomalous(subject_idx) {
            fp += 1;
            if !is_anomalous(reporter) {
                fp_healthy += 1;
            }
        }
    }

    let mut first_detect = Vec::with_capacity(anomalous.len());
    let mut full_dissem = Vec::with_capacity(anomalous.len());
    for &a in anomalous {
        let name = format!("node-{a}");
        let detect = cluster
            .trace()
            .failures()
            .find(|(at, reporter, subject)| {
                subject.as_str() == name && !is_anomalous(*reporter) && *at >= anomaly_start
            })
            .map(|(at, _, _)| at - anomaly_start);
        first_detect.push(detect);
        full_dissem.push(
            cluster
                .trace()
                .full_dissemination(&name, &healthy)
                .filter(|at| *at >= anomaly_start)
                .map(|at| at - anomaly_start),
        );
    }

    let total = cluster.telemetry().total();
    RunOutcome {
        anomalous: anomalous.to_vec(),
        n,
        fp_events: fp,
        fp_healthy_events: fp_healthy,
        first_detect,
        full_dissem,
        msgs_sent: total.messages(),
        bytes_sent: total.bytes(),
    }
}

/// The Threshold experiment (§V-D1): one synchronized set of `c`
/// anomalies of duration `d`.
#[derive(Clone, Debug)]
pub struct ThresholdScenario {
    /// Number of concurrent anomalies (`C`).
    pub c: usize,
    /// Anomaly duration (`D`).
    pub d: Duration,
    /// Protocol configuration under test.
    pub config: Config,
    /// Run seed.
    pub seed: u64,
    /// Cluster size (the paper uses 128).
    pub n: usize,
    /// Quiesce time before the anomaly.
    pub quiesce: Duration,
    /// Total run length from simulation start (the paper caps at 120 s).
    pub run_len: Duration,
    /// Worker threads for the simulator's event lanes. Any value
    /// reproduces the same outcome byte for byte (the lane scheduler's
    /// contract); > 1 trades determinism-preserving parallelism for
    /// channel overhead, so it only pays on multi-core hosts.
    pub workers: usize,
}

impl ThresholdScenario {
    /// Paper-parameterised scenario.
    pub fn new(c: usize, d: Duration, config: Config, seed: u64) -> Self {
        ThresholdScenario {
            c,
            d,
            config,
            seed,
            n: CLUSTER_SIZE,
            quiesce: QUIESCE,
            run_len: MIN_RUN,
            workers: 1,
        }
    }

    /// Executes the scenario and reduces it to metrics.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration fails
    /// [`Config::validate`] — a malformed grid point must not produce a
    /// silently wrong table row.
    pub fn run(&self) -> RunOutcome {
        let (cluster, anomalous, start) = self.run_cluster();
        extract(&cluster, &anomalous, start)
    }

    /// Executes the scenario and hands back the finished cluster with
    /// the anomaly assignment, so callers (the SLO smoke harness) can
    /// also pull per-node metrics snapshots before reduction.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration fails [`Config::validate`].
    pub fn run_cluster(&self) -> (Cluster, Vec<usize>, SimTime) {
        self.config.validate().expect("scenario config must be valid");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1CE);
        let anomalous = pick_anomalous(self.n, self.c, &mut rng);
        let start = SimTime::ZERO + self.quiesce;
        let mut builder = ClusterBuilder::new(self.n)
            .config(self.config.clone())
            .network(experiment_network())
            .seed(self.seed)
            .workers(self.workers);
        for &a in &anomalous {
            builder = builder.anomaly(
                a,
                AnomalySpec::Threshold {
                    start,
                    duration: self.d,
                },
            );
        }
        let mut cluster = builder.build();
        cluster.run_until(SimTime::ZERO + self.run_len);
        (cluster, anomalous, start)
    }
}

/// The Interval experiment (§V-D2): anomalies of duration `d` separated
/// by intervals `i`, cycling until 120 s have passed.
#[derive(Clone, Debug)]
pub struct IntervalScenario {
    /// Number of concurrent anomalies (`C`).
    pub c: usize,
    /// Anomaly duration (`D`).
    pub d: Duration,
    /// Normal-operation interval (`I`).
    pub i: Duration,
    /// Protocol configuration under test.
    pub config: Config,
    /// Run seed.
    pub seed: u64,
    /// Cluster size.
    pub n: usize,
    /// Quiesce time before the first anomaly.
    pub quiesce: Duration,
    /// Minimum run length; the run ends at the end of the next anomalous
    /// period after this.
    pub min_run: Duration,
}

impl IntervalScenario {
    /// Paper-parameterised scenario.
    pub fn new(c: usize, d: Duration, i: Duration, config: Config, seed: u64) -> Self {
        IntervalScenario {
            c,
            d,
            i,
            config,
            seed,
            n: CLUSTER_SIZE,
            quiesce: QUIESCE,
            min_run: MIN_RUN,
        }
    }

    /// Executes the scenario and reduces it to metrics.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration fails [`Config::validate`].
    pub fn run(&self) -> RunOutcome {
        self.config.validate().expect("scenario config must be valid");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1CE);
        let anomalous = pick_anomalous(self.n, self.c, &mut rng);
        let start = SimTime::ZERO + self.quiesce;
        let until = SimTime::ZERO + self.min_run;
        let spec = AnomalySpec::Interval {
            start,
            duration: self.d,
            interval: self.i,
            until,
        };
        // All anomalous nodes share the same lock-step schedule (paper
        // footnote 6: fully correlated anomalies are the worst case).
        let last_end = spec
            .windows(0)
            .last()
            .map(|w| w.end)
            .expect("interval schedule is non-empty");
        let mut builder = ClusterBuilder::new(self.n)
            .config(self.config.clone())
            .network(experiment_network())
            .seed(self.seed);
        for &a in &anomalous {
            builder = builder.anomaly(a, spec.clone());
        }
        let mut cluster = builder.build();
        cluster.run_until(last_end);
        extract(&cluster, &anomalous, start)
    }
}

/// The Figure 1 stress scenario: duty-cycle CPU starvation on a subset of
/// a 100-node cluster for five minutes.
#[derive(Clone, Debug)]
pub struct StressScenario {
    /// Number of stressed nodes (1–32 in the paper).
    pub stressed: usize,
    /// Protocol configuration under test.
    pub config: Config,
    /// Run seed.
    pub seed: u64,
    /// Cluster size (the paper uses 100 single-core VMs).
    pub n: usize,
    /// Length of the stress workload.
    pub duration: Duration,
}

impl StressScenario {
    /// Paper-parameterised scenario.
    pub fn new(stressed: usize, config: Config, seed: u64) -> Self {
        StressScenario {
            stressed,
            config,
            seed,
            n: STRESS_CLUSTER_SIZE,
            duration: STRESS_DURATION,
        }
    }

    /// Executes the scenario and reduces it to metrics.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration fails [`Config::validate`].
    pub fn run(&self) -> RunOutcome {
        self.config.validate().expect("scenario config must be valid");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1CE);
        let anomalous = pick_anomalous(self.n, self.stressed, &mut rng);
        let start = SimTime::ZERO + QUIESCE;
        let end = start + self.duration;
        let mut builder = ClusterBuilder::new(self.n)
            .config(self.config.clone())
            .network(experiment_network())
            .seed(self.seed);
        for &a in &anomalous {
            builder = builder.anomaly(a, AnomalySpec::cpu_stress(start, end));
        }
        let mut cluster = builder.build();
        // Let the cluster settle after the stress ends, as the paper's
        // log window does.
        cluster.run_until(end + Duration::from_secs(15));
        extract(&cluster, &anomalous, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper_tables() {
        assert_eq!(C_VALUES.len(), 9);
        assert_eq!(D_VALUES_MS.len(), 6);
        assert_eq!(I_VALUES_MS.len(), 8);
        assert_eq!(Scale::Paper.c_values(), &C_VALUES);
        assert_eq!(Scale::Paper.d_values_ms(), &D_VALUES_MS);
        assert_eq!(Scale::Paper.i_values_ms(), &I_VALUES_MS);
        assert_eq!(Scale::Paper.reps(), 10);
        assert!(Scale::Quick.c_values().len() < C_VALUES.len());
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn pick_anomalous_is_distinct_sorted_and_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = pick_anomalous(128, 32, &mut rng);
        assert_eq!(a.len(), 32);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 32);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(!a.contains(&0));

        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(a, pick_anomalous(128, 32, &mut rng2));
    }

    #[test]
    fn small_threshold_run_detects_long_anomaly() {
        // Scaled-down smoke test: 16 nodes, one 20 s anomaly. The victim
        // must be detected (suspicion min ≈ 5·log10(16)·1 s ≈ 6 s).
        let mut s = ThresholdScenario::new(1, Duration::from_secs(20), Config::lan(), 3);
        s.n = 16;
        s.run_len = Duration::from_secs(60);
        let out = s.run();
        assert_eq!(out.anomalous.len(), 1);
        assert!(out.first_detect[0].is_some(), "20 s pause must be detected");
        let d = out.first_detect[0].unwrap();
        assert!(d > Duration::from_secs(4) && d < Duration::from_secs(20), "{d:?}");
        assert!(out.full_dissem[0].is_some());
        assert!(out.full_dissem[0].unwrap() >= d);
        assert!(out.msgs_sent > 0 && out.bytes_sent > 0);
    }

    #[test]
    fn short_anomaly_is_not_detected() {
        // A 128 ms pause is far below any suspicion timeout.
        let mut s = ThresholdScenario::new(1, Duration::from_millis(128), Config::lan(), 4);
        s.n = 16;
        s.run_len = Duration::from_secs(40);
        let out = s.run();
        assert_eq!(out.first_detect[0], None);
        assert_eq!(out.fp_events, 0);
    }
}
