//! Plain-text table and CSV rendering for experiment results.

use std::fmt::Write as _;

/// A rendered result table (also convertible to CSV).
///
/// ```
/// use lifeguard_experiments::report::Table;
/// let mut t = Table::new("demo", vec!["config", "fp"]);
/// t.row(vec!["SWIM".into(), "339002".into()]);
/// let text = t.render();
/// assert!(text.contains("SWIM"));
/// assert!(t.to_csv().starts_with("config,fp\n"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for tests and post-processing.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>width$}", width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimal places, using `-` for NaN (used
/// for "no samples" cells).
pub fn fmt_f64(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else if v.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{v:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("long-header"));
        assert!(lines[2].starts_with('-'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 0), "xxxxxx");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn fmt_f64_special_values() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_f64(f64::INFINITY, 2), "inf");
    }
}
