//! Experiment harness reproducing the evaluation of the Lifeguard paper
//! (DSN 2018): every table and figure of §V.
//!
//! * [`scenario`] — the Threshold, Interval and CPU-stress workloads with
//!   the parameter grids of Tables II & III.
//! * [`tables`] — drivers that run the grids and render Tables IV–VII and
//!   Figures 1–3.
//! * [`metrics`] — percentile/summary statistics.
//! * [`report`] — plain-text and CSV table rendering.
//!
//! The `lifeguard-repro` binary wraps all of this:
//!
//! ```text
//! lifeguard-repro table4 --scale quick --seed 1
//! lifeguard-repro all --scale default --csv-dir results/
//! ```

pub mod metrics;
pub mod report;
pub mod scenario;
pub mod tables;

pub use report::Table;
pub use scenario::Scale;
