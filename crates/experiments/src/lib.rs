//! Experiment harness reproducing the evaluation of the Lifeguard paper
//! (DSN 2018): every table and figure of §V.
//!
//! * [`scenario`] — the Threshold, Interval and CPU-stress workloads with
//!   the parameter grids of Tables II & III.
//! * [`tables`] — drivers that run the grids and render Tables IV–VII and
//!   Figures 1–3.
//! * [`metrics`] — percentile/summary statistics (shared quantile rule
//!   re-exported from `lifeguard-metrics`).
//! * [`slo`] — the smoke sweep whose detection-latency and
//!   false-positive curves CI gates on (`target/METRICS.json`).
//! * [`report`] — plain-text and CSV table rendering.
//!
//! The `lifeguard-repro` binary wraps all of this:
//!
//! ```text
//! lifeguard-repro table4 --scale quick --seed 1
//! lifeguard-repro all --scale default --csv-dir results/
//! ```

pub mod metrics;
pub mod report;
pub mod scenario;
pub mod slo;
pub mod tables;

pub use report::Table;
pub use scenario::Scale;
