//! Statistics helpers for the experiment tables.
//!
//! The quantile machinery lives in `lifeguard-metrics` (the shared
//! observability crate) so the experiments, the protocol core and the
//! `swim-metrics` aggregator all use one rank rule. This module
//! re-exports [`percentile`] and builds the paper's latency summaries
//! on the shared log-bucket [`Histogram`].

use std::time::Duration;

use lifeguard_metrics::Histogram;
pub use lifeguard_metrics::percentile;

/// The latency summary the paper reports in Table V: median, 99th and
/// 99.9th percentiles, in seconds.
///
/// Built from the shared [`Histogram`], so quantiles carry its bounded
/// relative error (≤ ~3.2%) instead of being exact order statistics —
/// well under the run-to-run noise the tables average over, and it
/// keeps one quantile implementation in the workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median (50th percentile), seconds.
    pub median: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// 99.9th percentile, seconds.
    pub p999: f64,
    /// Number of samples the summary is built from.
    pub samples: usize,
}

impl LatencySummary {
    /// Summarises a set of latency samples. Returns `None` if empty.
    pub fn from_durations(latencies: impl IntoIterator<Item = Duration>) -> Option<Self> {
        let mut h = Histogram::new();
        let mut samples = 0usize;
        for d in latencies {
            h.record_duration(d);
            samples += 1;
        }
        Self::from_histogram_us(&h).map(|mut s| {
            s.samples = samples;
            s
        })
    }

    /// Summarises a microsecond histogram (the unit every metrics
    /// histogram in the workspace records). Returns `None` if empty.
    pub fn from_histogram_us(h: &Histogram) -> Option<Self> {
        const US_PER_SEC: f64 = 1_000_000.0;
        Some(LatencySummary {
            median: h.quantile(50.0)? / US_PER_SEC,
            p99: h.quantile(99.0)? / US_PER_SEC,
            p999: h.quantile(99.9)? / US_PER_SEC,
            samples: usize::try_from(h.count()).unwrap_or(usize::MAX),
        })
    }
}

/// Formats a ratio as a percentage of a baseline, the way Tables IV, VI
/// and VII present results ("% SWIM").
pub fn pct_of_baseline(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if value == 0.0 {
            100.0
        } else {
            f64::INFINITY
        }
    } else {
        value / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative-error helper: the log-bucket histogram bounds quantile
    /// error at half a sub-bucket (~3.2%).
    fn close(actual: f64, expected: f64) -> bool {
        (actual - expected).abs() <= expected * 0.033
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 62.5), Some(35.0));
    }

    #[test]
    fn percentile_handles_unsorted_input_and_single_sample() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
        assert_eq!(percentile(&[7.0], 99.9), Some(7.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let xs = vec![1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(2.0));
    }

    #[test]
    fn percentile_ignores_nan_samples() {
        // The pre-unification implementation panicked on NaN input; the
        // shared one drops NaN (no ordering information) and keeps the
        // rest of the table usable.
        assert_eq!(percentile(&[f64::NAN, 4.0, 2.0], 50.0), Some(3.0));
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn latency_summary_basics() {
        let s = LatencySummary::from_durations(vec![
            Duration::from_secs(10),
            Duration::from_secs(12),
            Duration::from_secs(14),
        ])
        .unwrap();
        assert!(close(s.median, 12.0), "median {}", s.median);
        assert_eq!(s.samples, 3);
        assert!(close(s.p99, 14.0), "p99 {}", s.p99);
        assert!(s.p999 >= s.p99);
        assert!(LatencySummary::from_durations(vec![]).is_none());
    }

    #[test]
    fn latency_summary_matches_histogram_path() {
        // from_durations is just from_histogram_us over the recorded
        // samples; the two constructors must agree.
        let durs = [37_u64, 1_200, 85_000, 85_000, 2_000_000];
        let mut h = Histogram::new();
        for &ms in &durs {
            h.record_duration(Duration::from_millis(ms));
        }
        let a = LatencySummary::from_durations(durs.iter().map(|&ms| Duration::from_millis(ms)))
            .unwrap();
        let b = LatencySummary::from_histogram_us(&h).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pct_of_baseline_edge_cases() {
        assert_eq!(pct_of_baseline(50.0, 100.0), 50.0);
        assert_eq!(pct_of_baseline(0.0, 0.0), 100.0);
        assert_eq!(pct_of_baseline(5.0, 0.0), f64::INFINITY);
    }
}
