//! Statistics helpers for the experiment tables.

use std::time::Duration;

/// Percentile by linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]`. Returns `None` for an empty sample.
///
/// ```
/// use lifeguard_experiments::metrics::percentile;
/// let xs = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// The latency summary the paper reports in Table V: median, 99th and
/// 99.9th percentiles, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median (50th percentile), seconds.
    pub median: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// 99.9th percentile, seconds.
    pub p999: f64,
    /// Number of samples the summary is built from.
    pub samples: usize,
}

impl LatencySummary {
    /// Summarises a set of latency samples. Returns `None` if empty.
    pub fn from_durations(latencies: impl IntoIterator<Item = Duration>) -> Option<Self> {
        let secs: Vec<f64> = latencies.into_iter().map(|d| d.as_secs_f64()).collect();
        if secs.is_empty() {
            return None;
        }
        Some(LatencySummary {
            median: percentile(&secs, 50.0).expect("non-empty"),
            p99: percentile(&secs, 99.0).expect("non-empty"),
            p999: percentile(&secs, 99.9).expect("non-empty"),
            samples: secs.len(),
        })
    }
}

/// Formats a ratio as a percentage of a baseline, the way Tables IV, VI
/// and VII present results ("% SWIM").
pub fn pct_of_baseline(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if value == 0.0 {
            100.0
        } else {
            f64::INFINITY
        }
    } else {
        value / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 62.5), Some(35.0));
    }

    #[test]
    fn percentile_handles_unsorted_input_and_single_sample() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
        assert_eq!(percentile(&[7.0], 99.9), Some(7.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let xs = vec![1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(2.0));
    }

    #[test]
    fn latency_summary_basics() {
        let s = LatencySummary::from_durations(vec![
            Duration::from_secs(10),
            Duration::from_secs(12),
            Duration::from_secs(14),
        ])
        .unwrap();
        assert_eq!(s.median, 12.0);
        assert_eq!(s.samples, 3);
        assert!(s.p99 <= 14.0 && s.p99 > 13.0);
        assert!(LatencySummary::from_durations(vec![]).is_none());
    }

    #[test]
    fn pct_of_baseline_edge_cases() {
        assert_eq!(pct_of_baseline(50.0, 100.0), 50.0);
        assert_eq!(pct_of_baseline(0.0, 0.0), 100.0);
        assert_eq!(pct_of_baseline(5.0, 0.0), f64::INFINITY);
    }
}
