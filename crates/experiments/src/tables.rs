//! Drivers that regenerate every table and figure of the paper.
//!
//! | artifact | function | source experiment |
//! |---|---|---|
//! | Figure 1 | [`fig1`] | Stress scenario, SWIM vs Lifeguard |
//! | Table IV | [`table4`] | Interval suite, α=5 β=6 |
//! | Figure 2 | [`fig2`] | Interval suite, FP by concurrency |
//! | Figure 3 | [`fig3`] | Interval suite, FP- by concurrency |
//! | Table V | [`table5`] | Threshold suite, α=5 β=6 |
//! | Table VI | [`table6`] | Interval suite message load |
//! | Table VII | [`table7`] | α/β sweep vs SWIM baseline |
//!
//! The Interval suite is run once ([`run_interval_suite`]) and shared by
//! Table IV, Figures 2/3 and Table VI, exactly as in the paper.

use std::time::Duration;

use lifeguard_core::config::{Config, LifeguardConfig};

use crate::metrics::{pct_of_baseline, LatencySummary};
use crate::report::{fmt_f64, Table};
use crate::scenario::{IntervalScenario, RunOutcome, Scale, StressScenario, ThresholdScenario};

/// Progress sink: called with a short line per completed run.
pub type Progress<'a> = &'a mut dyn FnMut(&str);

/// The five configurations of Table I, in paper order.
pub fn table1_configs() -> Vec<(&'static str, LifeguardConfig)> {
    vec![
        ("SWIM", LifeguardConfig::swim()),
        ("LHA-Probe", LifeguardConfig::lha_probe_only()),
        ("LHA-Suspicion", LifeguardConfig::lha_suspicion_only()),
        ("Buddy System", LifeguardConfig::buddy_system_only()),
        ("Lifeguard", LifeguardConfig::full()),
    ]
}

fn config_for(components: LifeguardConfig, alpha: f64, beta: f64) -> Config {
    Config::lan()
        .with_components(components)
        .with_alpha(alpha)
        .with_beta(beta)
}

fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= p.wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    h
}

/// One Interval-experiment run and its parameters.
#[derive(Clone, Debug)]
pub struct IntervalRecord {
    /// Table I configuration label.
    pub label: &'static str,
    /// Concurrent anomalies.
    pub c: usize,
    /// Anomaly duration (ms).
    pub d_ms: u64,
    /// Inter-anomaly interval (ms).
    pub i_ms: u64,
    /// Repetition index.
    pub rep: u64,
    /// Extracted metrics.
    pub outcome: RunOutcome,
}

/// One Threshold-experiment run and its parameters.
#[derive(Clone, Debug)]
pub struct ThresholdRecord {
    /// Table I configuration label.
    pub label: &'static str,
    /// Concurrent anomalies.
    pub c: usize,
    /// Anomaly duration (ms).
    pub d_ms: u64,
    /// Repetition index.
    pub rep: u64,
    /// Extracted metrics.
    pub outcome: RunOutcome,
}

/// Runs the Interval experiment grid for every Table I configuration.
pub fn run_interval_suite(
    scale: Scale,
    alpha: f64,
    beta: f64,
    seed: u64,
    progress: Progress<'_>,
) -> Vec<IntervalRecord> {
    let mut records = Vec::new();
    for (label, components) in table1_configs() {
        let config = config_for(components, alpha, beta);
        records.extend(run_interval_grid(scale, label, &config, seed, progress));
    }
    records
}

/// Runs the Interval grid for a single configuration.
pub fn run_interval_grid(
    scale: Scale,
    label: &'static str,
    config: &Config,
    seed: u64,
    progress: Progress<'_>,
) -> Vec<IntervalRecord> {
    let mut records = Vec::new();
    for &c in scale.c_values() {
        for &d_ms in scale.d_values_ms() {
            for &i_ms in scale.i_values_ms() {
                for rep in 0..scale.reps() {
                    let run_seed = mix(seed, &[1, c as u64, d_ms, i_ms, rep]);
                    let scenario = IntervalScenario::new(
                        c,
                        Duration::from_millis(d_ms),
                        Duration::from_millis(i_ms),
                        config.clone(),
                        run_seed,
                    );
                    let outcome = scenario.run();
                    progress(&format!(
                        "interval {label} C={c} D={d_ms}ms I={i_ms}ms rep={rep}: FP={} FP-={}",
                        outcome.fp_events, outcome.fp_healthy_events
                    ));
                    records.push(IntervalRecord {
                        label,
                        c,
                        d_ms,
                        i_ms,
                        rep,
                        outcome,
                    });
                }
            }
        }
    }
    records
}

/// Runs the Threshold experiment grid for every Table I configuration.
pub fn run_threshold_suite(
    scale: Scale,
    alpha: f64,
    beta: f64,
    seed: u64,
    progress: Progress<'_>,
) -> Vec<ThresholdRecord> {
    let mut records = Vec::new();
    for (label, components) in table1_configs() {
        let config = config_for(components, alpha, beta);
        records.extend(run_threshold_grid(scale, label, &config, seed, progress));
    }
    records
}

/// Runs the Threshold grid for a single configuration.
pub fn run_threshold_grid(
    scale: Scale,
    label: &'static str,
    config: &Config,
    seed: u64,
    progress: Progress<'_>,
) -> Vec<ThresholdRecord> {
    let mut records = Vec::new();
    for &c in scale.c_values() {
        for &d_ms in scale.d_values_ms() {
            for rep in 0..scale.reps() {
                let run_seed = mix(seed, &[2, c as u64, d_ms, rep]);
                let scenario = ThresholdScenario::new(
                    c,
                    Duration::from_millis(d_ms),
                    config.clone(),
                    run_seed,
                );
                let outcome = scenario.run();
                let detected = outcome.first_detect.iter().filter(|d| d.is_some()).count();
                progress(&format!(
                    "threshold {label} C={c} D={d_ms}ms rep={rep}: detected {detected}/{c}"
                ));
                records.push(ThresholdRecord {
                    label,
                    c,
                    d_ms,
                    rep,
                    outcome,
                });
            }
        }
    }
    records
}

fn sum_fp(records: &[IntervalRecord], label: &str) -> (u64, u64) {
    records
        .iter()
        .filter(|r| r.label == label)
        .fold((0, 0), |(fp, fpm), r| {
            (fp + r.outcome.fp_events, fpm + r.outcome.fp_healthy_events)
        })
}

/// Table IV: aggregated false positives per configuration, absolute and
/// as a percentage of the SWIM baseline.
pub fn table4(records: &[IntervalRecord]) -> Table {
    let (swim_fp, swim_fpm) = sum_fp(records, "SWIM");
    let mut t = Table::new(
        "Table IV: aggregated false positives (Interval experiment)",
        vec!["Configuration", "FP Events", "FP- Events", "FP %SWIM", "FP- %SWIM"],
    );
    for (label, _) in table1_configs() {
        let (fp, fpm) = sum_fp(records, label);
        t.row(vec![
            label.to_owned(),
            fp.to_string(),
            fpm.to_string(),
            fmt_f64(pct_of_baseline(fp as f64, swim_fp as f64), 2),
            fmt_f64(pct_of_baseline(fpm as f64, swim_fpm as f64), 2),
        ]);
    }
    t
}

fn fp_by_concurrency(records: &[IntervalRecord], healthy_only: bool) -> Table {
    let (title, what) = if healthy_only {
        (
            "Figure 3: false positives at healthy members vs concurrent anomalies",
            "FP-",
        )
    } else {
        (
            "Figure 2: total false positives vs concurrent anomalies",
            "FP",
        )
    };
    let mut header = vec!["C".to_owned()];
    for (label, _) in table1_configs() {
        header.push(format!("{what} {label}"));
    }
    let mut t = Table::new(title, header.iter().map(String::as_str).collect());
    let mut cs: Vec<usize> = records.iter().map(|r| r.c).collect();
    cs.sort_unstable();
    cs.dedup();
    for c in cs {
        let mut row = vec![c.to_string()];
        for (label, _) in table1_configs() {
            let sum: u64 = records
                .iter()
                .filter(|r| r.label == label && r.c == c)
                .map(|r| {
                    if healthy_only {
                        r.outcome.fp_healthy_events
                    } else {
                        r.outcome.fp_events
                    }
                })
                .sum();
            row.push(sum.to_string());
        }
        t.row(row);
    }
    t
}

/// Figure 2: total false positives per concurrency level and
/// configuration (log-scale series in the paper).
pub fn fig2(records: &[IntervalRecord]) -> Table {
    fp_by_concurrency(records, false)
}

/// Figure 3: false positives at healthy members per concurrency level.
pub fn fig3(records: &[IntervalRecord]) -> Table {
    fp_by_concurrency(records, true)
}

/// Summarises first-detection and full-dissemination latencies for one
/// configuration of a threshold suite.
pub fn latency_summaries(
    records: &[ThresholdRecord],
    label: &str,
) -> (Option<LatencySummary>, Option<LatencySummary>) {
    let first: Vec<Duration> = records
        .iter()
        .filter(|r| r.label == label)
        .flat_map(|r| r.outcome.first_detect.iter().flatten().copied())
        .collect();
    let full: Vec<Duration> = records
        .iter()
        .filter(|r| r.label == label)
        .flat_map(|r| r.outcome.full_dissem.iter().flatten().copied())
        .collect();
    (
        LatencySummary::from_durations(first),
        LatencySummary::from_durations(full),
    )
}

/// Table V: detection and dissemination latency percentiles per
/// configuration (seconds).
pub fn table5(records: &[ThresholdRecord]) -> Table {
    let mut t = Table::new(
        "Table V: first-detection and full-dissemination latency (seconds)",
        vec![
            "Configuration",
            "Med 1stDetect",
            "99% 1stDetect",
            "99.9% 1stDetect",
            "Med FullDissem",
            "99% FullDissem",
            "99.9% FullDissem",
        ],
    );
    for (label, _) in table1_configs() {
        let (first, full) = latency_summaries(records, label);
        let cells = |s: Option<LatencySummary>| match s {
            Some(s) => (
                fmt_f64(s.median, 2),
                fmt_f64(s.p99, 2),
                fmt_f64(s.p999, 2),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let (m1, p1, q1) = cells(first);
        let (m2, p2, q2) = cells(full);
        t.row(vec![label.to_owned(), m1, p1, q1, m2, p2, q2]);
    }
    t
}

/// Table VI: message load per configuration, absolute and as % of SWIM.
pub fn table6(records: &[IntervalRecord]) -> Table {
    let sums = |label: &str| {
        records
            .iter()
            .filter(|r| r.label == label)
            .fold((0u64, 0u64), |(m, b), r| {
                (m + r.outcome.msgs_sent, b + r.outcome.bytes_sent)
            })
    };
    let (swim_msgs, swim_bytes) = sums("SWIM");
    let mut t = Table::new(
        "Table VI: aggregated message load (Interval experiment)",
        vec![
            "Configuration",
            "Msgs Sent(M)",
            "Bytes Sent(GiB)",
            "Msgs %SWIM",
            "Bytes %SWIM",
        ],
    );
    for (label, _) in table1_configs() {
        let (msgs, bytes) = sums(label);
        t.row(vec![
            label.to_owned(),
            fmt_f64(msgs as f64 / 1e6, 2),
            fmt_f64(bytes as f64 / (1024.0 * 1024.0 * 1024.0), 3),
            fmt_f64(pct_of_baseline(msgs as f64, swim_msgs as f64), 2),
            fmt_f64(pct_of_baseline(bytes as f64, swim_bytes as f64), 2),
        ]);
    }
    t
}

/// The α/β combinations of Table VII, in paper column order.
pub const TABLE7_COMBOS: [(f64, f64); 9] = [
    (2.0, 2.0),
    (2.0, 4.0),
    (2.0, 6.0),
    (4.0, 2.0),
    (4.0, 4.0),
    (4.0, 6.0),
    (5.0, 2.0),
    (5.0, 4.0),
    (5.0, 6.0),
];

/// Table VII: full Lifeguard at each (α, β) tuning, every metric as a
/// percentage of the SWIM baseline run on the same grids.
pub fn table7(scale: Scale, seed: u64, progress: Progress<'_>) -> Table {
    // SWIM baseline (fixed timeout ≡ α=5, β=1).
    let swim_cfg = config_for(LifeguardConfig::swim(), 5.0, 6.0);
    let swim_thresh = run_threshold_grid(scale, "SWIM", &swim_cfg, seed, progress);
    let swim_interval = run_interval_grid(scale, "SWIM", &swim_cfg, seed, progress);
    let (swim_first, swim_full) = latency_summaries(&swim_thresh, "SWIM");
    let (swim_fp, swim_fpm) = sum_fp(&swim_interval, "SWIM");

    let mut header = vec!["Metric".to_owned()];
    for (a, b) in TABLE7_COMBOS {
        header.push(format!("a={a:.0} b={b:.0}"));
    }
    let mut t = Table::new(
        "Table VII: Lifeguard performance as % of SWIM baseline by (alpha, beta)",
        header.iter().map(String::as_str).collect(),
    );

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Med First".into()],
        vec!["Med Full".into()],
        vec!["99% First".into()],
        vec!["99% Full".into()],
        vec!["99.9% First".into()],
        vec!["99.9% Full".into()],
        vec!["FP".into()],
        vec!["FP-".into()],
    ];

    for (alpha, beta) in TABLE7_COMBOS {
        let cfg = config_for(LifeguardConfig::full(), alpha, beta);
        let thresh = run_threshold_grid(scale, "Lifeguard", &cfg, seed, progress);
        let interval = run_interval_grid(scale, "Lifeguard", &cfg, seed, progress);
        let (first, full) = latency_summaries(&thresh, "Lifeguard");
        let (fp, fpm) = sum_fp(&interval, "Lifeguard");

        let pct = |v: Option<f64>, base: Option<f64>| match (v, base) {
            (Some(v), Some(b)) => fmt_f64(pct_of_baseline(v, b), 2),
            _ => "-".into(),
        };
        rows[0].push(pct(first.map(|s| s.median), swim_first.map(|s| s.median)));
        rows[1].push(pct(full.map(|s| s.median), swim_full.map(|s| s.median)));
        rows[2].push(pct(first.map(|s| s.p99), swim_first.map(|s| s.p99)));
        rows[3].push(pct(full.map(|s| s.p99), swim_full.map(|s| s.p99)));
        rows[4].push(pct(first.map(|s| s.p999), swim_first.map(|s| s.p999)));
        rows[5].push(pct(full.map(|s| s.p999), swim_full.map(|s| s.p999)));
        rows[6].push(fmt_f64(
            pct_of_baseline(fp as f64, swim_fp as f64),
            2,
        ));
        rows[7].push(fmt_f64(
            pct_of_baseline(fpm as f64, swim_fpm as f64),
            2,
        ));
    }
    for row in rows {
        t.row(row);
    }
    t
}

/// Ablation (beyond the paper's tables; §VII lists these parameters as
/// future work): sweep LHA-Suspicion's re-gossip/confirmation count `K`
/// with everything else at Lifeguard defaults. Reports false positives
/// and median detection latency per `K`.
pub fn ablation_k(scale: Scale, seed: u64, progress: Progress<'_>) -> Table {
    let mut t = Table::new(
        "Ablation: LHA-Suspicion confirmation count K (Lifeguard defaults otherwise)",
        vec!["K", "FP Events", "FP- Events", "Med 1stDetect(s)", "Detected"],
    );
    for k in [0u32, 1, 2, 3, 5, 8] {
        let mut cfg = config_for(LifeguardConfig::full(), 5.0, 6.0);
        cfg.suspicion_k = k;
        let interval = run_interval_grid(scale, "Lifeguard", &cfg, seed, progress);
        let thresh = run_threshold_grid(scale, "Lifeguard", &cfg, seed, progress);
        let (fp, fpm) = sum_fp(&interval, "Lifeguard");
        let (first, _) = latency_summaries(&thresh, "Lifeguard");
        t.row(vec![
            k.to_string(),
            fp.to_string(),
            fpm.to_string(),
            first.map(|s| fmt_f64(s.median, 2)).unwrap_or_else(|| "-".into()),
            first.map(|s| s.samples.to_string()).unwrap_or_else(|| "0".into()),
        ]);
    }
    t
}

/// Ablation: sweep the LHM saturation limit `S` (paper default 8) with
/// everything else at Lifeguard defaults.
pub fn ablation_s(scale: Scale, seed: u64, progress: Progress<'_>) -> Table {
    let mut t = Table::new(
        "Ablation: LHM saturation S (Lifeguard defaults otherwise)",
        vec!["S", "FP Events", "FP- Events", "Med 1stDetect(s)", "Detected"],
    );
    for s in [0u32, 2, 4, 8, 16] {
        let mut cfg = config_for(LifeguardConfig::full(), 5.0, 6.0);
        cfg.awareness_max = s;
        let interval = run_interval_grid(scale, "Lifeguard", &cfg, seed, progress);
        let thresh = run_threshold_grid(scale, "Lifeguard", &cfg, seed, progress);
        let (fp, fpm) = sum_fp(&interval, "Lifeguard");
        let (first, _) = latency_summaries(&thresh, "Lifeguard");
        t.row(vec![
            s.to_string(),
            fp.to_string(),
            fpm.to_string(),
            first.map(|x| fmt_f64(x.median, 2)).unwrap_or_else(|| "-".into()),
            first.map(|x| x.samples.to_string()).unwrap_or_else(|| "0".into()),
        ]);
    }
    t
}

/// Figure 1: false positives under CPU exhaustion for SWIM and full
/// Lifeguard, by number of stressed nodes.
pub fn fig1(scale: Scale, seed: u64, progress: Progress<'_>) -> Table {
    let mut t = Table::new(
        "Figure 1: false positives from CPU exhaustion (100-node cluster)",
        vec![
            "Stressed",
            "FP SWIM",
            "FP- SWIM",
            "FP Lifeguard",
            "FP- Lifeguard",
        ],
    );
    for &stressed in scale.stress_counts() {
        let mut cells = vec![stressed.to_string()];
        let mut results = Vec::new();
        for (label, components) in [
            ("SWIM", LifeguardConfig::swim()),
            ("Lifeguard", LifeguardConfig::full()),
        ] {
            let cfg = config_for(components, 5.0, 6.0);
            let run_seed = mix(seed, &[3, stressed as u64]);
            let outcome = StressScenario::new(stressed, cfg, run_seed).run();
            progress(&format!(
                "fig1 {label} stressed={stressed}: FP={} FP-={}",
                outcome.fp_events, outcome.fp_healthy_events
            ));
            results.push(outcome);
        }
        cells.push(results[0].fp_events.to_string());
        cells.push(results[0].fp_healthy_events.to_string());
        cells.push(results[1].fp_events.to_string());
        cells.push(results[1].fp_healthy_events.to_string());
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_outcome(fp: u64, fpm: u64, msgs: u64, bytes: u64) -> RunOutcome {
        RunOutcome {
            anomalous: vec![1],
            n: 8,
            fp_events: fp,
            fp_healthy_events: fpm,
            first_detect: vec![Some(Duration::from_secs(12))],
            full_dissem: vec![Some(Duration::from_secs(13))],
            msgs_sent: msgs,
            bytes_sent: bytes,
        }
    }

    fn fake_interval(label: &'static str, c: usize, fp: u64, fpm: u64) -> IntervalRecord {
        IntervalRecord {
            label,
            c,
            d_ms: 2048,
            i_ms: 64,
            rep: 0,
            outcome: fake_outcome(fp, fpm, 1000, 100_000),
        }
    }

    #[test]
    fn table4_percentages_against_swim() {
        let records = vec![
            fake_interval("SWIM", 4, 200, 20),
            fake_interval("Lifeguard", 4, 2, 1),
        ];
        let t = table4(&records);
        assert_eq!(t.len(), 5);
        // SWIM row is 100%.
        assert_eq!(t.cell(0, 3), "100.00");
        // Lifeguard row: 2/200 = 1%.
        assert_eq!(t.cell(4, 1), "2");
        assert_eq!(t.cell(4, 3), "1.00");
        assert_eq!(t.cell(4, 4), "5.00");
    }

    #[test]
    fn fig2_fig3_bucket_by_concurrency() {
        let records = vec![
            fake_interval("SWIM", 4, 10, 1),
            fake_interval("SWIM", 4, 5, 2),
            fake_interval("SWIM", 16, 50, 9),
        ];
        let f2 = fig2(&records);
        assert_eq!(f2.len(), 2); // C = 4 and 16
        assert_eq!(f2.cell(0, 0), "4");
        assert_eq!(f2.cell(0, 1), "15"); // 10 + 5
        assert_eq!(f2.cell(1, 1), "50");
        let f3 = fig3(&records);
        assert_eq!(f3.cell(0, 1), "3"); // 1 + 2
    }

    #[test]
    fn table5_formats_latencies() {
        let rec = ThresholdRecord {
            label: "SWIM",
            c: 1,
            d_ms: 16384,
            rep: 0,
            outcome: fake_outcome(0, 0, 10, 10),
        };
        let t = table5(&[rec]);
        assert_eq!(t.cell(0, 1), "12.00");
        assert_eq!(t.cell(0, 4), "13.00");
        // Configurations with no samples show dashes.
        assert_eq!(t.cell(1, 1), "-");
    }

    #[test]
    fn table6_reports_load_in_m_and_gib() {
        let records = vec![
            fake_interval("SWIM", 4, 0, 0),
            fake_interval("Lifeguard", 4, 0, 0),
        ];
        let t = table6(&records);
        assert_eq!(t.cell(0, 3), "100.00");
        assert_eq!(t.cell(4, 3), "100.00");
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(1, &[1, 2, 3]), mix(1, &[1, 2, 3]));
        assert_ne!(mix(1, &[1, 2, 3]), mix(1, &[1, 2, 4]));
        assert_ne!(mix(1, &[1, 2, 3]), mix(2, &[1, 2, 3]));
    }

    #[test]
    fn table1_configs_match_paper() {
        let labels: Vec<&str> = table1_configs().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec!["SWIM", "LHA-Probe", "LHA-Suspicion", "Buddy System", "Lifeguard"]
        );
        for (label, c) in table1_configs() {
            assert_eq!(c.label(), label);
        }
    }
}
