//! Service-level-objective curves and the CI observability gate.
//!
//! The `lifeguard-repro smoke` artifact runs a small, fully
//! deterministic scenario sweep and reduces it to the two curves the
//! paper's evaluation cares about:
//!
//! * **Detection latency** — how long until a genuinely stalled member
//!   is first declared failed by a healthy member (paper Table V).
//! * **False positives** — failure declarations in runs where every
//!   anomaly is far below the suspicion timeout, so *any* failure
//!   event is spurious (paper Tables III/IV).
//!
//! Both curves are gated against the checked-in [`SloThresholds`] and
//! written to `target/METRICS.json` together with the merged per-node
//! metrics snapshots, so CI can hard-fail on a regression and archive
//! the artifact. Thresholds ratchet: when the protocol improves,
//! tighten them in the same PR (see `docs/OBSERVABILITY.md`).
//!
//! The sweep doubles as an end-to-end check of the observability
//! plane itself: the simulator trace and the metrics snapshots observe
//! the same runs independently, and the gate fails if they disagree
//! about whether failures were declared.

use std::fmt::Write as _;
use std::time::Duration;

use lifeguard_core::config::Config;
use lifeguard_metrics::{aggregate::hist_json, Aggregate, Histogram};

use crate::scenario::{self, ThresholdScenario};

/// Cluster size of the smoke sweep (kept small so CI stays fast).
const SMOKE_N: usize = 16;
/// Detection runs: one 20 s stall per run, well above the suspicion
/// timeout (≈ 6 s at n = 16), so it must always be detected.
const DETECT_REPS: u64 = 4;
const DETECT_D: Duration = Duration::from_secs(20);
const DETECT_RUN: Duration = Duration::from_secs(60);
/// False-positive runs: 2048 ms stalls are far below the suspicion
/// timeout, so every failure declaration in these runs is spurious.
const FP_C: [usize; 3] = [1, 2, 4];
const FP_D: Duration = Duration::from_millis(2048);
const FP_RUN: Duration = Duration::from_secs(40);

/// Hard SLO ceilings the smoke sweep is gated on.
///
/// These are deliberately looser than the typical deterministic
/// outcome (detection at n = 16 lands around 7–9 s) so that benign
/// scheduling changes don't flap CI, but tight enough that a broken
/// suspicion pipeline or a refutation regression trips them.
#[derive(Clone, Copy, Debug)]
pub struct SloThresholds {
    /// Minimum fraction of injected stalls that must be detected.
    pub detect_rate_min: f64,
    /// Ceiling on the median first-detection latency.
    pub detect_p50_max: Duration,
    /// Ceiling on the worst first-detection latency.
    pub detect_max: Duration,
    /// Ceiling on spurious failure events across the whole FP sweep.
    pub fp_spurious_max: u64,
}

impl SloThresholds {
    /// The checked-in thresholds CI enforces.
    pub const fn checked_in() -> SloThresholds {
        SloThresholds {
            detect_rate_min: 1.0,
            detect_p50_max: Duration::from_secs(12),
            detect_max: Duration::from_secs(20),
            fp_spurious_max: 2,
        }
    }
}

/// One point of the false-positive curve.
#[derive(Clone, Copy, Debug)]
pub struct FpPoint {
    /// Concurrent sub-threshold anomalies injected.
    pub c: usize,
    /// Failure events observed (all spurious by construction).
    pub spurious: u64,
    /// Spurious failures whose subject *and* reporter were healthy.
    pub spurious_healthy: u64,
    /// Sum of `failures_declared` over every node's metrics snapshot.
    pub declared_by_metrics: u64,
}

/// Everything the smoke sweep produced, plus the gate verdict.
#[derive(Clone, Debug)]
pub struct SmokeReport {
    /// Thresholds the report was gated against.
    pub thresholds: SloThresholds,
    /// First-detection latencies of every detected stall, microseconds.
    pub detection_us: Histogram,
    /// Stalls injected across the detection runs.
    pub anomalies: u64,
    /// Stalls that were detected at all.
    pub detected: u64,
    /// Detection-latency curve: `(percentile, seconds)` points.
    pub detection_curve: Vec<(f64, f64)>,
    /// False-positive curve, one point per concurrency level.
    pub fp_curve: Vec<FpPoint>,
    /// Per-node metrics snapshots of the first detection run.
    pub aggregate: Aggregate,
    /// Threshold breaches; empty means the gate passes.
    pub violations: Vec<String>,
}

impl SmokeReport {
    /// Whether the gate passes.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of injected stalls that were detected.
    pub fn detect_rate(&self) -> f64 {
        if self.anomalies == 0 {
            0.0
        } else {
            self.detected as f64 / self.anomalies as f64
        }
    }

    /// Total spurious failure events across the FP sweep.
    pub fn spurious_total(&self) -> u64 {
        self.fp_curve.iter().map(|p| p.spurious).sum()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "SLO smoke sweep · n={SMOKE_N} cluster");
        let _ = writeln!(
            out,
            "  detection   {}/{} stalls detected",
            self.detected, self.anomalies
        );
        for &(p, secs) in &self.detection_curve {
            let _ = writeln!(out, "    p{p:<5} {secs:>7.2} s");
        }
        let _ = writeln!(out, "  false positives (sub-threshold stalls)");
        for p in &self.fp_curve {
            let _ = writeln!(
                out,
                "    c={:<2} spurious={} healthy-only={} metrics-declared={}",
                p.c, p.spurious, p.spurious_healthy, p.declared_by_metrics
            );
        }
        if self.pass() {
            let _ = writeln!(out, "  gate        PASS");
        } else {
            let _ = writeln!(out, "  gate        FAIL");
            for v in &self.violations {
                let _ = writeln!(out, "    violation: {v}");
            }
        }
        out
    }

    /// The machine-readable report CI archives as `METRICS.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\"slo\":{\"pass\":");
        out.push_str(if self.pass() { "true" } else { "false" });
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:?}", v);
        }
        let t = &self.thresholds;
        let _ = write!(
            out,
            "],\"thresholds\":{{\"detect_rate_min\":{:.4},\"detect_p50_max_s\":{:.3},\"detect_max_s\":{:.3},\"fp_spurious_max\":{}}}}}",
            t.detect_rate_min,
            t.detect_p50_max.as_secs_f64(),
            t.detect_max.as_secs_f64(),
            t.fp_spurious_max
        );
        let _ = write!(
            out,
            ",\"detection\":{{\"anomalies\":{},\"detected\":{},\"rate\":{:.4},\"curve_s\":[",
            self.anomalies,
            self.detected,
            self.detect_rate()
        );
        for (i, &(p, secs)) in self.detection_curve.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{p:.1},{secs:.6}]");
        }
        out.push_str("],\"latency_us\":");
        out.push_str(&hist_json(&self.detection_us));
        let _ = write!(
            out,
            "}},\"false_positives\":{{\"spurious_total\":{},\"curve\":[",
            self.spurious_total()
        );
        for (i, p) in self.fp_curve.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"c\":{},\"spurious\":{},\"spurious_healthy\":{},\"declared_by_metrics\":{}}}",
                p.c, p.spurious, p.spurious_healthy, p.declared_by_metrics
            );
        }
        out.push_str("]},\"cluster\":");
        self.aggregate.write_json(&mut out);
        out.push('}');
        out
    }
}

/// Sum of `failures_declared` across every node's metrics snapshot.
fn declared_by_metrics(cluster: &lifeguard_sim::cluster::Cluster) -> u64 {
    (0..cluster.len())
        .map(|i| cluster.metrics_snapshot(i).core.failures_declared)
        .sum()
}

/// Runs the smoke sweep and gates it against the checked-in
/// thresholds. Fully deterministic for a given `seed`.
pub fn run_smoke(seed: u64, progress: &mut dyn FnMut(&str)) -> SmokeReport {
    let thresholds = SloThresholds::checked_in();
    let mut detection_us = Histogram::new();
    let mut anomalies = 0u64;
    let mut detected = 0u64;
    let mut aggregate = Aggregate::new();
    let mut violations = Vec::new();

    for rep in 0..DETECT_REPS {
        let mut s = ThresholdScenario::new(1, DETECT_D, Config::lan().lifeguard(), seed.wrapping_add(rep));
        s.n = SMOKE_N;
        s.run_len = DETECT_RUN;
        let (cluster, anomalous, start) = s.run_cluster();
        let out = scenario::extract(&cluster, &anomalous, start);
        anomalies += out.first_detect.len() as u64;
        for d in out.first_detect.iter().flatten() {
            detected += 1;
            detection_us.record_duration(*d);
        }
        // The trace and the metrics plane watch the same run through
        // different pipes; a detected stall must show up in both.
        let declared = declared_by_metrics(&cluster);
        if out.first_detect.iter().any(|d| d.is_some()) && declared == 0 {
            violations.push(format!(
                "detection run {rep}: trace saw a failure but no node's metrics declared one"
            ));
        }
        if rep == 0 {
            for i in 0..cluster.len() {
                aggregate.add(&format!("node-{i}"), cluster.metrics_snapshot(i));
            }
        }
        progress(&format!(
            "detect rep {}/{}: {} declared",
            rep + 1,
            DETECT_REPS,
            declared
        ));
    }

    let mut fp_curve = Vec::with_capacity(FP_C.len());
    for (i, &c) in FP_C.iter().enumerate() {
        let mut s = ThresholdScenario::new(c, FP_D, Config::lan().lifeguard(), (seed ^ 0xF5_0000) + i as u64);
        s.n = SMOKE_N;
        s.run_len = FP_RUN;
        let (cluster, anomalous, start) = s.run_cluster();
        let out = scenario::extract(&cluster, &anomalous, start);
        let spurious = cluster.trace().failures().count() as u64;
        let declared = declared_by_metrics(&cluster);
        if (spurious == 0) != (declared == 0) {
            violations.push(format!(
                "fp run c={c}: trace counted {spurious} failures but metrics declared {declared}"
            ));
        }
        fp_curve.push(FpPoint {
            c,
            spurious,
            spurious_healthy: out.fp_healthy_events,
            declared_by_metrics: declared,
        });
        progress(&format!("fp c={c}: {spurious} spurious"));
    }

    let detection_curve: Vec<(f64, f64)> = [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0]
        .iter()
        .filter_map(|&p| detection_us.quantile(p).map(|us| (p, us / 1_000_000.0)))
        .collect();

    let mut report = SmokeReport {
        thresholds,
        detection_us,
        anomalies,
        detected,
        detection_curve,
        fp_curve,
        aggregate,
        violations,
    };

    if report.detect_rate() < thresholds.detect_rate_min {
        report.violations.push(format!(
            "detection rate {:.3} below SLO minimum {:.3}",
            report.detect_rate(),
            thresholds.detect_rate_min
        ));
    }
    if let Some(p50) = report.detection_us.quantile(50.0) {
        let max = thresholds.detect_p50_max.as_secs_f64() * 1_000_000.0;
        if p50 > max {
            report.violations.push(format!(
                "median detection latency {:.2} s over SLO ceiling {:.2} s",
                p50 / 1_000_000.0,
                thresholds.detect_p50_max.as_secs_f64()
            ));
        }
    }
    let worst = report.detection_us.max();
    if worst > thresholds.detect_max.as_micros() as u64 {
        report.violations.push(format!(
            "worst detection latency {:.2} s over SLO ceiling {:.2} s",
            worst as f64 / 1_000_000.0,
            thresholds.detect_max.as_secs_f64()
        ));
    }
    if report.spurious_total() > thresholds.fp_spurious_max {
        report.violations.push(format!(
            "{} spurious failure events over SLO ceiling {}",
            report.spurious_total(),
            thresholds.fp_spurious_max
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_sane() {
        let t = SloThresholds::checked_in();
        assert!(t.detect_rate_min > 0.0 && t.detect_rate_min <= 1.0);
        assert!(t.detect_p50_max < t.detect_max);
        assert!(t.detect_max <= DETECT_D, "a stall must be detectable within itself");
    }

    #[test]
    fn report_json_is_balanced_and_gated() {
        let mut r = SmokeReport {
            thresholds: SloThresholds::checked_in(),
            detection_us: Histogram::new(),
            anomalies: 2,
            detected: 2,
            detection_curve: vec![(50.0, 7.5)],
            fp_curve: vec![FpPoint {
                c: 1,
                spurious: 0,
                spurious_healthy: 0,
                declared_by_metrics: 0,
            }],
            aggregate: Aggregate::new(),
            violations: Vec::new(),
        };
        r.detection_us.record_duration(Duration::from_secs(7));
        assert!(r.pass());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"pass\":true"));
        assert!(json.contains("\"curve_s\""));
        assert!(json.contains("\"false_positives\""));
        r.violations.push("boom".to_string());
        assert!(r.to_json().contains("\"pass\":false"));
    }

    #[test]
    fn smoke_sweep_passes_checked_in_slos() {
        // The full CI gate on the default seed: deterministic, so a
        // failure here is a real protocol or metrics regression.
        let mut quiet = |_: &str| {};
        let report = run_smoke(42, &mut quiet);
        assert!(report.pass(), "violations: {:?}", report.violations);
        assert_eq!(report.detected, report.anomalies);
        assert!(!report.aggregate.is_empty());
        assert!(report.aggregate.merged().core.probes_sent > 0);
    }
}
