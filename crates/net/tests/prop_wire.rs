//! Fuzz-style properties for the wire-facing paths: arbitrary and
//! mutated bytes through the stream frame decoder and the datagram
//! handling path must never panic (the panic ratchet pins `proto` and
//! `net` at zero sites; this exercises that guarantee with input).

use lifeguard_core::config::Config;
use lifeguard_core::driver::{Driver, Sink};
use lifeguard_core::event::Event;
use lifeguard_core::node::SwimNode;
use lifeguard_core::time::Time;
use lifeguard_net::transport::{encode_frame, FrameDecoder};
use lifeguard_proto::{codec, Message, NodeAddr, NodeName, Ping, SeqNo};
use proptest::prelude::*;

/// A sink that swallows every effect — only reachability (no panic)
/// is under test here.
struct NullSink;

impl Sink for NullSink {
    fn transmit(&mut self, _to: NodeAddr, _payload: &[u8]) {}
    fn stream(&mut self, _to: NodeAddr, _msg: Message) {}
    fn event(&mut self, _event: Event) {}
}

fn started_driver() -> Driver {
    let node = SwimNode::new(
        NodeName::from("fuzz"),
        NodeAddr::new([127, 0, 0, 1], 7946),
        Config::lan().lifeguard(),
        7,
    );
    let mut driver = Driver::new(node);
    driver.start(Time::ZERO, &mut NullSink);
    driver
}

fn valid_frame() -> Vec<u8> {
    let msg = Message::Ping(Ping {
        seq: SeqNo(9),
        target: NodeName::from("peer"),
        source: NodeName::from("fuzz"),
        source_addr: NodeAddr::new([10, 0, 0, 1], 7946),
    });
    encode_frame(NodeAddr::new([10, 0, 0, 1], 7946), &msg)
}

proptest! {
    /// Arbitrary bytes through the datagram path: decode errors are
    /// fine, panics are not — and the driver must stay usable.
    #[test]
    fn random_datagrams_never_panic(payload in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let mut driver = started_driver();
        let from = NodeAddr::new([192, 0, 2, 1], 9000);
        let _ = driver.handle_datagram_slice_deferring(from, &payload, Time::ZERO, &mut NullSink);
        driver.flush_deferred(&mut NullSink);
        // Still alive: a well-formed message afterwards is handled.
        let ping = codec::encode_message(&Message::Ping(Ping {
            seq: SeqNo(1),
            target: NodeName::from("fuzz"),
            source: NodeName::from("peer"),
            source_addr: from,
        }));
        let res = driver.handle_datagram_slice_deferring(from, &ping, Time::ZERO, &mut NullSink);
        prop_assert!(res.is_ok());
    }

    /// A valid encoded message with one byte flipped: worst case a
    /// decode error, never a panic.
    #[test]
    fn mutated_messages_never_panic(flip_at in 0usize..64, flip_to in any::<u8>()) {
        let mut bytes: Vec<u8> = codec::encode_message(&Message::Ping(Ping {
            seq: SeqNo(3),
            target: NodeName::from("a-target-name"),
            source: NodeName::from("a-source-name"),
            source_addr: NodeAddr::new([192, 0, 2, 2], 9000),
        }))
        .to_vec();
        if flip_at < bytes.len() {
            bytes[flip_at] = flip_to;
        }
        let mut driver = started_driver();
        let from = NodeAddr::new([192, 0, 2, 2], 9000);
        let _ = driver.handle_datagram_slice_deferring(from, &bytes, Time::ZERO, &mut NullSink);
        driver.flush_deferred(&mut NullSink);
    }

    /// Arbitrary bytes through the stream frame decoder, fed in
    /// arbitrary chunk sizes: errors allowed, panics not.
    #[test]
    fn random_stream_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..128,
    ) {
        let mut dec = FrameDecoder::new();
        for piece in bytes.chunks(chunk) {
            dec.feed(piece);
            // Drain until the decoder wants more input or errors; an
            // error poisons nothing (the caller drops the connection).
            loop {
                match dec.decode() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return Ok(()),
                }
            }
        }
    }

    /// A valid frame with one header/body byte flipped, then the
    /// pristine frame again: the decoder either recovers a message or
    /// errors, and never panics mid-stream.
    #[test]
    fn mutated_frames_never_panic(flip_at in 0usize..64, flip_to in any::<u8>()) {
        let mut frame = valid_frame();
        if flip_at < frame.len() {
            frame[flip_at] = flip_to;
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        // Errored: a fresh decoder must still handle a clean frame
        // (connection-per-decoder, like the runtime does it). An Ok
        // means the flip was benign (e.g. in the sender address).
        if dec.decode().is_err() {
            let mut fresh = FrameDecoder::new();
            fresh.feed(&valid_frame());
            prop_assert!(matches!(fresh.decode(), Ok(Some(_))));
        }
    }
}
