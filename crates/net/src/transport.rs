//! Wire transport over real sockets: framing split from I/O.
//!
//! * Datagrams: one UDP socket, packets already compound-encoded by the
//!   protocol core.
//! * Streams: one short-lived TCP connection per message (push-pull
//!   sync, fallback probes), framed as
//!   `[sender advertised addr][u32 length][encoded message]` so the
//!   receiver can route replies to the sender's listener rather than the
//!   ephemeral connection source.
//!
//! Framing is a pure, incremental state machine ([`FrameDecoder`]:
//! feed bytes, poll for a frame) with **no I/O inside** — the
//! readiness-driven reactor feeds it whatever a nonblocking read
//! returned, while the blocking helpers ([`read_frame`],
//! [`read_frame_with_limit`]) wrap the same decoder around a blocking
//! `Read`. The length prefix is validated against a configurable
//! maximum *before* any body buffer is grown, so an attacker-controlled
//! length can never drive an allocation.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use lifeguard_proto::{codec, DecodeError, Message, NodeAddr};

/// Default maximum accepted stream frame (a push-pull of a few thousand
/// members fits comfortably). Override per agent with
/// [`crate::agent::AgentConfig::max_stream_frame`].
pub const MAX_STREAM_FRAME: usize = 16 * 1024 * 1024;

/// I/O timeout for stream sends and reads.
pub const STREAM_TIMEOUT: Duration = Duration::from_secs(5);

/// Errors from stream framing.
#[derive(Debug)]
pub enum StreamError {
    /// Socket-level failure.
    Io(io::Error),
    /// Malformed frame or message.
    Decode(DecodeError),
    /// Frame length exceeded the decoder's maximum.
    Oversized(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream i/o error: {e}"),
            StreamError::Decode(e) => write!(f, "stream decode error: {e}"),
            StreamError::Oversized(n) => write!(f, "stream frame of {n} bytes is oversized"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Decode(e) => Some(e),
            StreamError::Oversized(_) => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

/// Encodes a stream frame: sender address, length, message.
pub fn encode_frame(sender: NodeAddr, msg: &Message) -> Vec<u8> {
    let body = codec::encode_message(msg);
    let mut buf = BytesMut::with_capacity(body.len() + 32);
    match sender.ip() {
        std::net::IpAddr::V4(ip) => {
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        std::net::IpAddr::V6(ip) => {
            buf.put_u8(6);
            buf.put_slice(&ip.octets());
        }
    }
    buf.put_u16(sender.port());
    debug_assert!(body.len() <= MAX_STREAM_FRAME, "frame exceeds stream limit");
    // lint: allow(lossy_cast) — peers reject frames over MAX_STREAM_FRAME (16 MiB < u32::MAX)
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    buf.to_vec()
}

/// Incremental stream-frame decoder: push bytes in with
/// [`FrameDecoder::feed`], pull at most one decoded frame out with
/// [`FrameDecoder::decode`]. Partial frames are buffered between
/// calls, so the caller can feed whatever a (possibly nonblocking)
/// read returned.
///
/// The length prefix is checked against the configured maximum as soon
/// as the 4-byte length word is available — an oversized frame is
/// rejected before its body ever accumulates, provided the caller
/// interleaves `decode` with bounded-size `feed`s (both the reactor
/// and the blocking readers feed at most one ≤ 4 KiB chunk per
/// `decode`).
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: usize,
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder enforcing the default [`MAX_STREAM_FRAME`] limit.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_limit(MAX_STREAM_FRAME)
    }

    /// A decoder enforcing `max_frame` as the largest accepted message
    /// body, in bytes.
    pub fn with_limit(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            max_frame,
            buf: Vec::new(),
        }
    }

    /// Appends raw bytes from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tries to decode one complete frame from the buffered bytes.
    /// Returns `Ok(None)` while the frame is still partial.
    ///
    /// # Errors
    ///
    /// [`StreamError::Oversized`] as soon as a length prefix above the
    /// limit is seen; [`StreamError::Decode`] for malformed headers or
    /// message bodies.
    // lint: allow(panic_path) — every slice range is derived from `header_len`/`body_len` immediately after the `buf.len() < …` early returns that bound them, and `buf[0]` follows the `is_empty` check
    pub fn decode(&mut self) -> Result<Option<(NodeAddr, Message)>, StreamError> {
        let buf = &self.buf;
        if buf.is_empty() {
            return Ok(None);
        }
        let addr_len = match buf[0] {
            4 => 4,
            6 => 16,
            other => return Err(StreamError::Decode(DecodeError::UnknownAddrFamily(other))),
        };
        // family + address + port + u32 length word.
        let header_len = 1 + addr_len + 2 + 4;
        if buf.len() < header_len {
            return Ok(None);
        }
        // The range arithmetic above guarantees each slice's length,
        // but this is a wire path: surface a decode error rather than
        // carry a panicking conversion.
        fn take<const N: usize>(b: &[u8]) -> Result<[u8; N], StreamError> {
            b.try_into()
                .map_err(|_| StreamError::Decode(DecodeError::UnexpectedEof))
        }
        let body_len = u32::from_be_bytes(take(&buf[header_len - 4..header_len])?) as usize;
        if body_len > self.max_frame {
            return Err(StreamError::Oversized(body_len));
        }
        if buf.len() < header_len + body_len {
            return Ok(None);
        }
        let ip: std::net::IpAddr = if addr_len == 4 {
            std::net::IpAddr::from(take::<4>(&buf[1..5])?)
        } else {
            std::net::IpAddr::from(take::<16>(&buf[1..17])?)
        };
        let port = u16::from_be_bytes(take(&buf[1 + addr_len..1 + addr_len + 2])?);
        let msg = codec::decode_message(&buf[header_len..header_len + body_len])?;
        self.buf.drain(..header_len + body_len);
        Ok(Some((NodeAddr::from(SocketAddr::new(ip, port)), msg)))
    }
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

/// Reads one frame from a blocking stream, enforcing the default
/// [`MAX_STREAM_FRAME`] limit.
///
/// # Errors
///
/// Fails on socket errors, truncated or oversized frames, or malformed
/// messages.
pub fn read_frame(stream: &mut impl Read) -> Result<(NodeAddr, Message), StreamError> {
    read_frame_with_limit(stream, MAX_STREAM_FRAME)
}

/// Reads one frame from a blocking stream with a caller-chosen maximum
/// frame size.
///
/// # Errors
///
/// Fails on socket errors, truncated or oversized frames, or malformed
/// messages.
pub fn read_frame_with_limit(
    stream: &mut impl Read,
    max_frame: usize,
) -> Result<(NodeAddr, Message), StreamError> {
    let mut decoder = FrameDecoder::with_limit(max_frame);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = decoder.decode()? {
            return Ok(frame);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(StreamError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            )));
        }
        decoder.feed(&chunk[..n]);
    }
}

/// Sends one framed message over a fresh TCP connection.
///
/// # Errors
///
/// Fails if the connection cannot be established or written within
/// [`STREAM_TIMEOUT`].
pub fn send_stream(to: SocketAddr, sender: NodeAddr, msg: &Message) -> Result<(), StreamError> {
    send_frame(to, &encode_frame(sender, msg))
}

/// Sends one already-encoded frame (see [`encode_frame`]) over a fresh
/// TCP connection — the agent's pooled stream writer encodes off the
/// protocol thread and ships the bytes here.
///
/// # Errors
///
/// Fails if the connection cannot be established or written within
/// [`STREAM_TIMEOUT`].
pub fn send_frame(to: SocketAddr, frame: &[u8]) -> Result<(), StreamError> {
    let mut stream = TcpStream::connect_timeout(&to, STREAM_TIMEOUT)?;
    stream.set_write_timeout(Some(STREAM_TIMEOUT))?;
    stream.set_nodelay(true)?;
    stream.write_all(frame)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lifeguard_proto::{Ack, Alive, Incarnation, SeqNo};
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Ack(Ack { seq: SeqNo(77) });
        let frame = encode_frame(sender, &msg);
        let (from, back) = read_frame(&mut Cursor::new(frame)).unwrap();
        assert_eq!(from, sender);
        assert_eq!(back, msg);
    }

    #[test]
    fn truncated_frame_errors() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Ack(Ack { seq: SeqNo(77) });
        let frame = encode_frame(sender, &msg);
        for cut in [0usize, 3, 7, frame.len() - 1] {
            assert!(read_frame(&mut Cursor::new(&frame[..cut])).is_err());
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut frame = Vec::new();
        frame.push(4u8);
        frame.extend_from_slice(&[127, 0, 0, 1]);
        frame.extend_from_slice(&7001u16.to_be_bytes());
        frame.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(frame)),
            Err(StreamError::Oversized(_))
        ));
    }

    #[test]
    fn decoder_assembles_frames_from_single_byte_feeds() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Ack(Ack { seq: SeqNo(42) });
        let frame = encode_frame(sender, &msg);
        let mut decoder = FrameDecoder::new();
        for (i, byte) in frame.iter().enumerate() {
            assert!(
                decoder.decode().expect("partial is not an error").is_none(),
                "frame completed early at byte {i}"
            );
            decoder.feed(std::slice::from_ref(byte));
        }
        let (from, back) = decoder.decode().expect("valid").expect("complete");
        assert_eq!(from, sender);
        assert_eq!(back, msg);
        assert!(decoder.decode().expect("drained").is_none());
    }

    #[test]
    fn decoder_handles_ipv6_sender() {
        let sender = NodeAddr::from(SocketAddr::new(
            std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            9000,
        ));
        let msg = Message::Ack(Ack { seq: SeqNo(7) });
        let frame = encode_frame(sender, &msg);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame);
        let (from, back) = decoder.decode().expect("valid").expect("complete");
        assert_eq!(from, sender);
        assert_eq!(back, msg);
    }

    /// The configurable limit is a boundary, not an approximation: a
    /// body of exactly `limit` bytes decodes, `limit + 1` is rejected —
    /// and the rejection happens from the length word alone, before any
    /// body bytes are buffered.
    #[test]
    fn frame_size_limit_boundary() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "padded".into(),
            addr: sender,
            meta: Bytes::from(vec![0u8; 512]),
        });
        let frame = encode_frame(sender, &msg);
        let body_len = frame.len() - (1 + 4 + 2 + 4);

        // At the limit: accepted.
        let mut at_limit = FrameDecoder::with_limit(body_len);
        at_limit.feed(&frame);
        let (_, back) = at_limit.decode().expect("at-limit is valid").expect("complete");
        assert_eq!(back, msg);

        // One past the limit (limit = body - 1): rejected with the
        // offending length, before the body is needed — feed only the
        // header.
        let mut over = FrameDecoder::with_limit(body_len - 1);
        over.feed(&frame[..1 + 4 + 2 + 4]);
        assert!(matches!(
            over.decode(),
            Err(StreamError::Oversized(n)) if n == body_len
        ));

        // Same boundary through the blocking reader.
        assert!(read_frame_with_limit(&mut Cursor::new(&frame), body_len).is_ok());
        assert!(matches!(
            read_frame_with_limit(&mut Cursor::new(&frame), body_len - 1),
            Err(StreamError::Oversized(_))
        ));
    }

    #[test]
    fn stream_error_display() {
        let e = StreamError::Oversized(5);
        assert!(e.to_string().contains("oversized"));
    }
}
