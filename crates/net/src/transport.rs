//! Wire transport over real sockets.
//!
//! * Datagrams: one UDP socket, packets already compound-encoded by the
//!   protocol core.
//! * Streams: one short-lived TCP connection per message (push-pull
//!   sync, fallback probes), framed as
//!   `[sender advertised addr][u32 length][encoded message]` so the
//!   receiver can route replies to the sender's listener rather than the
//!   ephemeral connection source.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use lifeguard_proto::{codec, DecodeError, Message, NodeAddr};

/// Maximum accepted stream frame (a push-pull of a few thousand members
/// fits comfortably).
pub const MAX_STREAM_FRAME: usize = 16 * 1024 * 1024;

/// I/O timeout for stream sends and reads.
pub const STREAM_TIMEOUT: Duration = Duration::from_secs(5);

/// Errors from stream framing.
#[derive(Debug)]
pub enum StreamError {
    /// Socket-level failure.
    Io(io::Error),
    /// Malformed frame or message.
    Decode(DecodeError),
    /// Frame length exceeded [`MAX_STREAM_FRAME`].
    Oversized(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream i/o error: {e}"),
            StreamError::Decode(e) => write!(f, "stream decode error: {e}"),
            StreamError::Oversized(n) => write!(f, "stream frame of {n} bytes is oversized"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Decode(e) => Some(e),
            StreamError::Oversized(_) => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

/// Encodes a stream frame: sender address, length, message.
pub fn encode_frame(sender: NodeAddr, msg: &Message) -> Vec<u8> {
    let body = codec::encode_message(msg);
    let mut buf = BytesMut::with_capacity(body.len() + 32);
    match sender.ip() {
        std::net::IpAddr::V4(ip) => {
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        std::net::IpAddr::V6(ip) => {
            buf.put_u8(6);
            buf.put_slice(&ip.octets());
        }
    }
    buf.put_u16(sender.port());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    buf.to_vec()
}

/// Reads one frame from a stream.
///
/// # Errors
///
/// Fails on socket errors, oversized frames, or malformed messages.
pub fn read_frame(stream: &mut impl Read) -> Result<(NodeAddr, Message), StreamError> {
    let mut family = [0u8; 1];
    stream.read_exact(&mut family)?;
    let ip: std::net::IpAddr = match family[0] {
        4 => {
            let mut o = [0u8; 4];
            stream.read_exact(&mut o)?;
            std::net::IpAddr::from(o)
        }
        6 => {
            let mut o = [0u8; 16];
            stream.read_exact(&mut o)?;
            std::net::IpAddr::from(o)
        }
        other => return Err(StreamError::Decode(DecodeError::UnknownAddrFamily(other))),
    };
    let mut buf2 = [0u8; 2];
    stream.read_exact(&mut buf2)?;
    let port = u16::from_be_bytes(buf2);
    let mut buf4 = [0u8; 4];
    stream.read_exact(&mut buf4)?;
    let len = u32::from_be_bytes(buf4) as usize;
    if len > MAX_STREAM_FRAME {
        return Err(StreamError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let msg = codec::decode_message(&body)?;
    Ok((NodeAddr::from(SocketAddr::new(ip, port)), msg))
}

/// Sends one framed message over a fresh TCP connection.
///
/// # Errors
///
/// Fails if the connection cannot be established or written within
/// [`STREAM_TIMEOUT`].
pub fn send_stream(to: SocketAddr, sender: NodeAddr, msg: &Message) -> Result<(), StreamError> {
    send_frame(to, &encode_frame(sender, msg))
}

/// Sends one already-encoded frame (see [`encode_frame`]) over a fresh
/// TCP connection — the agent's pooled stream writer encodes off the
/// protocol thread and ships the bytes here.
///
/// # Errors
///
/// Fails if the connection cannot be established or written within
/// [`STREAM_TIMEOUT`].
pub fn send_frame(to: SocketAddr, frame: &[u8]) -> Result<(), StreamError> {
    let mut stream = TcpStream::connect_timeout(&to, STREAM_TIMEOUT)?;
    stream.set_write_timeout(Some(STREAM_TIMEOUT))?;
    stream.set_nodelay(true)?;
    stream.write_all(frame)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::{Ack, SeqNo};
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Ack(Ack { seq: SeqNo(77) });
        let frame = encode_frame(sender, &msg);
        let (from, back) = read_frame(&mut Cursor::new(frame)).unwrap();
        assert_eq!(from, sender);
        assert_eq!(back, msg);
    }

    #[test]
    fn truncated_frame_errors() {
        let sender = NodeAddr::new([127, 0, 0, 1], 7001);
        let msg = Message::Ack(Ack { seq: SeqNo(77) });
        let frame = encode_frame(sender, &msg);
        for cut in [0usize, 3, 7, frame.len() - 1] {
            assert!(read_frame(&mut Cursor::new(&frame[..cut])).is_err());
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut frame = Vec::new();
        frame.push(4u8);
        frame.extend_from_slice(&[127, 0, 0, 1]);
        frame.extend_from_slice(&7001u16.to_be_bytes());
        frame.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(frame)),
            Err(StreamError::Oversized(_))
        ));
    }

    #[test]
    fn stream_error_display() {
        let e = StreamError::Oversized(5);
        assert!(e.to_string().contains("oversized"));
    }
}
