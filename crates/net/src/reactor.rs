//! The readiness-driven reactor runtime: one thread, zero sleeps.
//!
//! [`Reactor::run`] replaces the threaded agent's four blocking threads
//! (UDP reader, accept loop, ticker, stream-writer pool) with a single
//! event loop over a [`polling::Poller`]:
//!
//! * the UDP socket and TCP listener are nonblocking and registered for
//!   read readiness;
//! * inbound TCP connections are nonblocking state machines — each owns
//!   a [`FrameDecoder`] accumulating its partial frame, so a slow
//!   sender stalls nothing;
//! * outbound stream messages are nonblocking connect-then-write state
//!   machines (`connect(2)` returns `EINPROGRESS`, write readiness
//!   completes the handshake, partial writes keep their cursor), so an
//!   unreachable peer consumes a connection-table slot, never a thread;
//! * the poll timeout is **exactly** the protocol core's
//!   [`next_deadline`](lifeguard_core::driver::Driver::next_deadline)
//!   (bounded by the earliest connection deadline), so timers fire on
//!   time instead of on a tick-thread's fixed cadence.
//!
//! Wakeup flow: API threads (`join`, `leave`, …) drive the shared
//! [`Driver`](lifeguard_core::driver::Driver) under its lock exactly as
//! in the threaded runtime, then [`notify`](polling::Poller::notify)
//! the reactor so it re-reads the (possibly earlier) next deadline and
//! picks up any outbound stream jobs the drive queued. Drives performed
//! *by* the reactor thread skip the notify — the loop re-computes its
//! sleep bound before every wait anyway.
//!
//! # Batched datagram I/O
//!
//! With [`IoBatchConfig::batching`](crate::agent::IoBatchConfig) on
//! (the default), the reactor's UDP datapath batches both directions:
//!
//! * **send** — drives go through the driver's *deferring* path: the
//!   packets one input produces stay as byte ranges into the core's
//!   scratch arena (held across the burst) and are flushed as one
//!   `sendmmsg(2)` per [`batch_size`](crate::agent::IoBatchConfig::batch_size)
//!   chunk, so a probe round's whole fan-out costs one syscall instead
//!   of one per peer;
//! * **receive** — readiness drains through a preallocated
//!   `recvmmsg(2)` ring; each filled slot is handed to the core as a
//!   borrowed slice (no per-datagram allocation), and the replies the
//!   burst produces are themselves deferred and batch-flushed.
//!
//! Kernels without the syscalls (`ENOSYS`) degrade to the single-shot
//! path permanently and silently; wire behaviour is identical either
//! way — batching changes syscall counts, never packet contents or
//! order.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::ops::Range;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::Receiver;
use lifeguard_core::driver::Sink;
use lifeguard_core::event::Event as ProtoEvent;
use lifeguard_core::node::Input;
use lifeguard_core::time::Time;
use lifeguard_proto::{Message, NodeAddr};
use polling::mmsg::{RecvRing, SendBatch};
use polling::{Event, Events, Poller};

use crate::agent::{send_counted, Inner, IoCounters, NetSink, StreamJob};
use crate::transport::{self, FrameDecoder};

/// Registration key of the agent's UDP socket.
const KEY_UDP: usize = 0;
/// Registration key of the agent's TCP listener.
const KEY_LISTENER: usize = 1;
/// First key handed to a TCP connection (inbound or outbound).
const FIRST_CONN_KEY: usize = 2;

/// Bytes per receive-ring slot: the largest possible UDP datagram, so
/// `MSG_TRUNC` marks a malformed sender, never a short buffer.
const RECV_SLOT_LEN: usize = 65536;

/// Upper bound on tracked TCP connections (inbound + outbound). At the
/// cap the listener is disarmed — pending connections wait in the OS
/// backlog (or time out) instead of exhausting the process fd table,
/// and accepting resumes as soon as a slot frees. The threaded layout
/// bounded this implicitly (1 inbound + 4 writers); the reactor bounds
/// it explicitly.
const MAX_CONNS: usize = 1024;

thread_local! {
    static ON_REACTOR_THREAD: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is a reactor loop. Drives from a reactor
/// thread skip the poller notify: the loop recomputes its sleep bound
/// before every wait, so the wakeup would only burn a syscall.
pub(crate) fn on_reactor_thread() -> bool {
    ON_REACTOR_THREAD.with(Cell::get)
}

/// The reactor's sendmmsg state: the FFI pointer tables plus the
/// staged `SocketAddr` batch, reused across flushes so the steady
/// state allocates nothing.
struct SendIo {
    table: SendBatch,
    /// Destination/range pairs staged for the current flush
    /// ([`NodeAddr`]s resolved to socket addresses once, up front).
    // bounded: cleared every flush; holds at most one deferred burst (the driver flushes at `batch_size`)
    stage: Vec<(SocketAddr, Range<usize>)>,
    batch_size: usize,
    /// Cleared permanently the first time `sendmmsg` reports `ENOSYS`;
    /// every later flush takes the single-shot path.
    supported: bool,
}

impl SendIo {
    fn new(batch_size: usize) -> SendIo {
        SendIo {
            table: SendBatch::new(batch_size),
            stage: Vec::new(),
            batch_size,
            supported: true,
        }
    }

    /// Sends one deferred burst: `batch_size` packets per `sendmmsg`,
    /// degenerating to plain counted `send_to` for a batch of one or
    /// on a kernel without the syscall. Payloads are byte ranges into
    /// `arena` (the core's held scratch buffer) — this is the gather
    /// step, no copies happen on the way to the kernel.
    fn flush(
        &mut self,
        udp: &UdpSocket,
        counters: &IoCounters,
        arena: &[u8],
        packets: &[(NodeAddr, Range<usize>)],
    ) {
        if !self.supported || packets.len() < 2 {
            for (to, range) in packets {
                send_counted(udp, counters, to.socket_addr(), &arena[range.clone()]);
            }
            return;
        }
        self.stage.clear();
        self.stage.extend(
            packets
                .iter()
                .map(|(to, range)| (to.socket_addr(), range.clone())),
        );
        let fd = udp.as_raw_fd();
        let mut sent = 0;
        while sent < self.stage.len() {
            let end = (sent + self.batch_size).min(self.stage.len());
            match self.table.send(fd, arena, &self.stage[sent..end]) {
                // Defensive: a nonempty batch reports an error, never
                // zero sends.
                Ok(0) => break,
                Ok(n) => {
                    counters.send_syscalls.fetch_add(1, Ordering::Relaxed);
                    counters.datagrams_sent.fetch_add(n as u64, Ordering::Relaxed);
                    let bytes: usize = self.stage[sent..sent + n]
                        .iter()
                        .map(|(_, r)| r.len())
                        .sum();
                    counters
                        .datagram_bytes
                        .fetch_add(bytes as u64, Ordering::Relaxed);
                    if n > 1 {
                        counters.sendmmsg_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    sent += n;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Full send buffer: drop the whole remainder,
                    // exactly as per-packet `send_to` would drop each
                    // (SWIM treats every datagram as droppable).
                    counters.send_syscalls.fetch_add(1, Ordering::Relaxed);
                    counters
                        .would_block_drops
                        .fetch_add((self.stage.len() - sent) as u64, Ordering::Relaxed);
                    break;
                }
                Err(ref e) if e.kind() == io::ErrorKind::Unsupported => {
                    // ENOSYS: single-shot the remainder and never try
                    // sendmmsg again on this socket.
                    self.supported = false;
                    for (to, range) in &self.stage[sent..] {
                        send_counted(udp, counters, *to, &arena[range.clone()]);
                    }
                    return;
                }
                Err(_) => {
                    // sendmmsg reports an error only when the *first*
                    // datagram of the batch fails; count and skip that
                    // head, retry the rest.
                    counters.send_syscalls.fetch_add(1, Ordering::Relaxed);
                    counters.send_errors.fetch_add(1, Ordering::Relaxed);
                    sent += 1;
                }
            }
        }
    }
}

/// The reactor's batching [`Sink`]: everything behaves as the plain
/// [`NetSink`] except [`Sink::transmit_batch`], which gathers the
/// deferred burst into `sendmmsg` flushes. Built per drive while the
/// driver lock is held.
struct BatchSink<'a> {
    net: NetSink<'a>,
    io: &'a mut SendIo,
}

impl Sink for BatchSink<'_> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        self.net.transmit(to, payload);
    }

    fn transmit_batch(&mut self, arena: &[u8], packets: &[(NodeAddr, Range<usize>)]) {
        self.io
            .flush(self.net.udp, self.net.counters, arena, packets);
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        self.net.stream(to, msg);
    }

    fn event(&mut self, event: ProtoEvent) {
        self.net.event(event);
    }
}

/// One TCP connection the reactor is advancing.
enum Conn {
    /// An accepted connection delivering one inbound framed message.
    Inbound {
        stream: TcpStream,
        decoder: FrameDecoder,
        /// Wall-clock instant after which the connection is abandoned.
        deadline: Instant,
    },
    /// An in-progress outbound send: nonblocking connect, then the
    /// frame written as write readiness allows.
    Outbound {
        stream: TcpStream,
        frame: Vec<u8>,
        written: usize,
        /// Whether the nonblocking connect has completed.
        connected: bool,
        /// Wall-clock instant after which the connection is abandoned.
        deadline: Instant,
    },
}

impl Conn {
    fn stream(&self) -> &TcpStream {
        match self {
            Conn::Inbound { stream, .. } | Conn::Outbound { stream, .. } => stream,
        }
    }

    fn deadline(&self) -> Instant {
        match self {
            Conn::Inbound { deadline, .. } | Conn::Outbound { deadline, .. } => *deadline,
        }
    }
}

/// What to do with a connection after advancing its state machine.
enum Advance {
    /// Keep the connection registered with the given interest.
    Keep(Event),
    /// The connection is finished (or failed): deregister and drop.
    Done,
}

/// The single-threaded readiness loop behind
/// [`Runtime::Reactor`](crate::agent::Runtime::Reactor).
pub(crate) struct Reactor {
    inner: Arc<Inner>,
    poller: Arc<Poller>,
    listener: TcpListener,
    stream_rx: Receiver<StreamJob>,
    // bounded: accepts are disarmed at MAX_CONNS, so the map never exceeds that cap plus in-flight outbound syncs
    conns: BTreeMap<usize, Conn>,
    next_key: usize,
    // bounded: sized once at startup to the maximum datagram length, never grows
    udp_buf: Vec<u8>,
    /// Whether the listener currently has read interest armed. It is
    /// disarmed at [`MAX_CONNS`] (backpressure) and after an accept
    /// failure like `EMFILE` (throttle: re-armed on the next loop pass
    /// instead of letting level-triggered readiness spin the loop).
    listener_armed: bool,
    /// sendmmsg flush state; `None` when batching is configured off
    /// (drives then go through the unbatched [`Inner::drive`]).
    send_io: Option<SendIo>,
    /// recvmmsg ring; `None` when batching is configured off, and
    /// reset to `None` permanently if the kernel reports `ENOSYS`.
    recv_ring: Option<RecvRing>,
}

impl Reactor {
    /// Builds the reactor and registers the agent's long-lived sources
    /// with the poller — registration failures surface here, *before*
    /// the loop thread spawns, so [`Agent::start`](crate::Agent::start)
    /// can refuse to hand out a deaf agent.
    ///
    /// # Errors
    ///
    /// Propagates poller registration failures.
    pub(crate) fn new(
        inner: Arc<Inner>,
        poller: Arc<Poller>,
        listener: TcpListener,
        stream_rx: Receiver<StreamJob>,
    ) -> io::Result<Reactor> {
        poller.add(&inner.udp, Event::readable(KEY_UDP))?;
        if let Err(e) = poller.add(&listener, Event::readable(KEY_LISTENER)) {
            let _ = poller.delete(&inner.udp);
            return Err(e);
        }
        let (send_io, recv_ring) = if inner.io_batch.batching {
            (
                Some(SendIo::new(inner.io_batch.batch_size)),
                Some(RecvRing::new(inner.io_batch.recv_burst, RECV_SLOT_LEN)),
            )
        } else {
            (None, None)
        };
        Ok(Reactor {
            inner,
            poller,
            listener,
            stream_rx,
            conns: BTreeMap::new(),
            next_key: FIRST_CONN_KEY,
            udp_buf: vec![0u8; RECV_SLOT_LEN],
            listener_armed: true,
            send_io,
            recv_ring,
        })
    }

    /// Feeds one input through the driver with packet sends deferred
    /// and flushed as a batch before the driver lock is released, so a
    /// fan-out (probe round, gossip burst) costs one `sendmmsg` per
    /// [`SendIo::batch_size`] packets. Falls back to the unbatched
    /// [`Inner::drive`] when batching is off.
    fn drive_reactor(&mut self, input: Input, now: Time) {
        let Some(io) = self.send_io.as_mut() else {
            self.inner.drive(input, now);
            return;
        };
        let mut driver = self.inner.driver.lock();
        let mut sink = BatchSink {
            net: self.inner.sink(now),
            io,
        };
        // lint: allow(lock_discipline) — by design: the deferred burst is gathered and flushed (sendmmsg on a non-blocking socket) before the lock releases, so packet order matches protocol order
        let _ = driver.handle_deferring(input, now, &mut sink);
        // lint: allow(lock_discipline) — by design: see above; the flush must see the arena the lock protects
        driver.flush_deferred(&mut sink);
    }

    /// Runs the event loop until the agent's shutdown flag is raised.
    pub(crate) fn run(mut self) {
        ON_REACTOR_THREAD.with(|flag| flag.set(true));
        let mut events = Events::new();
        loop {
            // 1. Fire due protocol timers (exact-deadline ticking).
            let now = self.inner.now();
            let due = {
                let driver = self.inner.driver.lock();
                matches!(driver.next_deadline(), Some(at) if at <= now)
            };
            if due {
                self.drive_reactor(Input::Tick, now);
            }
            // 2. Start outbound connections for queued stream jobs —
            //    including ones the tick above just produced.
            while let Ok((to, msg)) = self.stream_rx.try_recv() {
                let frame = transport::encode_frame(self.inner.advertised, &msg);
                self.start_outbound(to, frame);
            }
            // 3. Abandon connections past their I/O deadline, then
            //    (re-)arm the listener if there is capacity for more.
            let wall = Instant::now();
            self.expire(wall);
            if !self.listener_armed && self.conns.len() < MAX_CONNS {
                self.listener_armed = self
                    .poller
                    .modify(&self.listener, Event::readable(KEY_LISTENER))
                    .is_ok();
            }
            if self.inner.shutdown.load(Ordering::Relaxed) {
                break;
            }
            // 4. Sleep exactly until the next timer or connection
            //    deadline; readiness or a notify ends the sleep early.
            let timeout = self.sleep_budget(wall);
            let _ = self.poller.wait(&mut events, timeout);
            // Every poll return is one loop wakeup — the number the
            // idle-efficiency story is gated on (timer-rate, not
            // spinning), exported via `Agent::metrics()`.
            self.inner.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.inner.shutdown.load(Ordering::Relaxed) {
                break;
            }
            // 5. Dispatch readiness.
            for event in events.iter() {
                match event.key {
                    KEY_UDP => self.drain_datagrams(),
                    KEY_LISTENER => self.drain_accepts(),
                    key => self.advance_conn(key),
                }
            }
        }
        let _ = self.poller.delete(&self.inner.udp);
        let _ = self.poller.delete(&self.listener);
        for (_, conn) in std::mem::take(&mut self.conns) {
            let _ = self.poller.delete(conn.stream());
        }
    }

    /// How long the poller may sleep: until the protocol core's next
    /// timer deadline or the earliest connection deadline, whichever
    /// comes first. `None` (sleep until readiness/notify) only when
    /// neither exists.
    fn sleep_budget(&self, wall: Instant) -> Option<Duration> {
        let now = self.inner.now();
        let timer = self
            .inner
            .driver
            .lock()
            .next_deadline()
            .map(|at| at.saturating_since(now));
        let conn = self
            .conns
            .values()
            .map(Conn::deadline)
            .min()
            .map(|at| at.saturating_duration_since(wall));
        match (timer, conn) {
            (Some(t), Some(c)) => Some(t.min(c)),
            (Some(t), None) => Some(t),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        }
    }

    /// Drains the UDP socket: every queued datagram is fed to the
    /// driver; queued socket errors (e.g. ICMP port-unreachable from a
    /// dead peer's address) are discarded without stalling the loop.
    /// The drain is bounded by the configured
    /// [`max_burst`](crate::agent::IoBatchConfig::max_burst) before
    /// yielding back to the loop; `poll` is level-triggered, so
    /// anything left is re-reported immediately.
    fn drain_datagrams(&mut self) {
        let max_burst = self.inner.io_batch.max_burst;
        if self.recv_ring.is_some() {
            self.drain_datagrams_batched(max_burst);
        } else {
            self.drain_datagrams_single(max_burst);
        }
        let _ = self
            .poller
            .modify(&self.inner.udp, Event::readable(KEY_UDP));
    }

    /// The single-shot drain: one `recv_from` plus one payload copy
    /// per datagram, one unbatched drive each.
    fn drain_datagrams_single(&mut self, max_burst: usize) {
        for _ in 0..max_burst {
            let recv = self.inner.udp.recv_from(&mut self.udp_buf);
            self.inner
                .counters
                .recv_syscalls
                .fetch_add(1, Ordering::Relaxed);
            match recv {
                Ok((len, from)) => {
                    self.inner
                        .counters
                        .datagrams_received
                        .fetch_add(1, Ordering::Relaxed);
                    let now = self.inner.now();
                    let payload = Bytes::copy_from_slice(&self.udp_buf[..len]);
                    self.inner.drive(
                        Input::Datagram {
                            from: NodeAddr::from(from),
                            payload,
                        },
                        now,
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A queued error was consumed; stop the burst here.
                // Level-triggered poll re-reports remaining readiness,
                // so a persistently erroring socket costs one recv per
                // wakeup instead of a hot spin.
                Err(_) => break,
            }
        }
    }

    /// The batched drain: fill the `recvmmsg` ring, hand each slot to
    /// the core as a borrowed slice (zero-copy — only blob fields are
    /// copied out during decode), defer the packets the burst produces
    /// and flush them as `sendmmsg` batches. The driver lock is taken
    /// once per ring fill, not once per datagram.
    fn drain_datagrams_batched(&mut self, max_burst: usize) {
        let fd = self.inner.udp.as_raw_fd();
        let mut drained = 0usize;
        let mut enosys = false;
        // Both batching halves are constructed together; if either is
        // missing this runtime is in single-shot mode.
        let (Some(ring), Some(io)) = (self.recv_ring.as_mut(), self.send_io.as_mut()) else {
            self.drain_datagrams_single(max_burst);
            return;
        };
        while drained < max_burst {
            let res = ring.recv(fd);
            self.inner
                .counters
                .recv_syscalls
                .fetch_add(1, Ordering::Relaxed);
            let n = match res {
                Ok(n) => n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Unsupported => {
                    // ENOSYS: this kernel has no recvmmsg. Drop the
                    // ring for good (below, once its borrow ends) and
                    // finish the drain single-shot.
                    enosys = true;
                    break;
                }
                // A queued socket error was consumed; yield to the
                // loop (level-triggered readiness re-reports the rest).
                Err(_) => break,
            };
            if n == 0 {
                break;
            }
            drained += n;
            let now = self.inner.now();
            let socket_drained;
            {
                socket_drained = n < ring.slots();
                let batch_size = io.batch_size;
                let counters = &self.inner.counters;
                let mut driver = self.inner.driver.lock();
                let mut sink = BatchSink {
                    net: self.inner.sink(now),
                    io: &mut *io,
                };
                for i in 0..n {
                    if ring.truncated(i) {
                        // Bigger than a ring slot — only possible for
                        // a malformed sender (slots hold 64 KiB, the
                        // UDP maximum); count the drop and move on.
                        counters.recv_truncations.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let Some((from, payload)) = ring.datagram(i) else {
                        continue;
                    };
                    counters.datagrams_received.fetch_add(1, Ordering::Relaxed);
                    // lint: allow(lock_discipline) — by design: the receive burst is processed and its replies gather-sent under one lock hold; all sockets involved are non-blocking
                    let _ = driver.handle_datagram_slice_deferring(
                        NodeAddr::from(from),
                        payload,
                        now,
                        &mut sink,
                    );
                    // Mid-burst flush: bound the arena and the
                    // deferred table while replies keep accumulating.
                    if driver.deferred_packets() >= batch_size {
                        // lint: allow(lock_discipline) — by design: mid-burst sendmmsg flush on a non-blocking socket; releasing the lock here would invalidate the arena ranges
                        driver.flush_deferred(&mut sink);
                    }
                }
                // lint: allow(lock_discipline) — by design: final flush of the burst while the arena the lock protects is still valid
                driver.flush_deferred(&mut sink);
            }
            if socket_drained {
                break;
            }
        }
        if enosys {
            self.recv_ring = None;
            self.drain_datagrams_single(max_burst - drained);
        }
    }

    /// Accepts pending connections (up to [`MAX_CONNS`] tracked) and
    /// registers each as a nonblocking inbound frame reader. The
    /// listener is left disarmed at capacity or after an accept
    /// failure (e.g. fd exhaustion); the loop re-arms it once room
    /// frees, so pressure parks connections in the OS backlog instead
    /// of spinning the loop.
    fn drain_accepts(&mut self) {
        self.listener_armed = false;
        let mut rearm = true;
        loop {
            if self.conns.len() >= MAX_CONNS {
                rearm = false;
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let key = self.alloc_key();
                    if self.poller.add(&stream, Event::readable(key)).is_ok() {
                        self.conns.insert(
                            key,
                            Conn::Inbound {
                                stream,
                                decoder: FrameDecoder::with_limit(self.inner.max_stream_frame),
                                deadline: Instant::now() + transport::STREAM_TIMEOUT,
                            },
                        );
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    rearm = false;
                    break;
                }
            }
        }
        if rearm {
            self.listener_armed = self
                .poller
                .modify(&self.listener, Event::readable(KEY_LISTENER))
                .is_ok();
        }
    }

    /// Begins one outbound framed send: nonblocking connect, register
    /// for write readiness. Connection failures are dropped silently —
    /// stream messages are best-effort, exactly as in the threaded
    /// writer pool — and so are jobs arriving while the connection
    /// table is at [`MAX_CONNS`] (e.g. a partition leaving hundreds of
    /// sends pending to unreachable peers must not exhaust the fd
    /// table; the protocol re-sends on its own cadence).
    fn start_outbound(&mut self, to: SocketAddr, frame: Vec<u8>) {
        if self.conns.len() >= MAX_CONNS {
            return;
        }
        let Ok((stream, connected)) = polling::sock::connect_stream(to) else {
            return;
        };
        if connected {
            let _ = stream.set_nodelay(true);
        }
        let key = self.alloc_key();
        if self.poller.add(&stream, Event::writable(key)).is_ok() {
            self.conns.insert(
                key,
                Conn::Outbound {
                    stream,
                    frame,
                    written: 0,
                    connected,
                    deadline: Instant::now() + transport::STREAM_TIMEOUT,
                },
            );
        }
    }

    /// Advances one connection's state machine after a readiness (or
    /// error) event on it.
    fn advance_conn(&mut self, key: usize) {
        let Some(mut conn) = self.conns.remove(&key) else {
            return; // stale event for a closed connection
        };
        let advance = match &mut conn {
            Conn::Inbound {
                stream, decoder, ..
            } => self.advance_inbound(key, stream, decoder),
            Conn::Outbound {
                stream,
                frame,
                written,
                connected,
                ..
            } => advance_outbound(key, stream, frame, written, connected),
        };
        match advance {
            Advance::Keep(interest) => {
                let _ = self.poller.modify(conn.stream(), interest);
                self.conns.insert(key, conn);
            }
            Advance::Done => {
                let _ = self.poller.delete(conn.stream());
            }
        }
    }

    /// Reads as much as the socket will give; a completed frame is fed
    /// to the driver and the connection closed (the protocol sends one
    /// frame per connection; replies travel on a fresh connection, as
    /// in the threaded runtime).
    fn advance_inbound(
        &mut self,
        key: usize,
        stream: &mut TcpStream,
        decoder: &mut FrameDecoder,
    ) -> Advance {
        let mut chunk = [0u8; 4096];
        loop {
            match decoder.decode() {
                Ok(Some((from, msg))) => {
                    let now = self.inner.now();
                    self.drive_reactor(Input::Stream { from, msg }, now);
                    return Advance::Done;
                }
                Ok(None) => {}
                Err(_) => return Advance::Done, // oversized or malformed
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Advance::Done, // EOF mid-frame
                Ok(n) => decoder.feed(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Advance::Keep(Event::readable(key));
                }
                Err(_) => return Advance::Done,
            }
        }
    }

    fn expire(&mut self, wall: Instant) {
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.deadline() <= wall)
            .map(|(&key, _)| key)
            .collect();
        for key in expired {
            if let Some(conn) = self.conns.remove(&key) {
                let _ = self.poller.delete(conn.stream());
            }
        }
    }

    fn alloc_key(&mut self) -> usize {
        loop {
            let key = self.next_key;
            self.next_key = self.next_key.checked_add(1).unwrap_or(FIRST_CONN_KEY);
            if !self.conns.contains_key(&key) {
                return key;
            }
        }
    }
}

/// Finishes the nonblocking connect if needed, then writes as much of
/// the frame as the socket accepts.
fn advance_outbound(
    key: usize,
    stream: &mut TcpStream,
    frame: &[u8],
    written: &mut usize,
    connected: &mut bool,
) -> Advance {
    if !*connected {
        // Write readiness after EINPROGRESS: the connect finished,
        // successfully or not — SO_ERROR tells which.
        match stream.take_error() {
            Ok(None) => {
                *connected = true;
                let _ = stream.set_nodelay(true);
            }
            Ok(Some(_)) | Err(_) => return Advance::Done,
        }
    }
    while *written < frame.len() {
        match stream.write(&frame[*written..]) {
            Ok(0) => return Advance::Done,
            Ok(n) => *written += n,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                return Advance::Keep(Event::writable(key));
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Advance::Done,
        }
    }
    Advance::Done // frame fully written; drop closes the connection
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A bound sender/receiver pair plus fresh counters for flush tests.
    fn flush_fixture() -> (UdpSocket, UdpSocket, IoCounters) {
        let udp = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let peer = UdpSocket::bind("127.0.0.1:0").expect("bind peer");
        peer.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        (udp, peer, IoCounters::default())
    }

    /// Receives `n` datagrams and returns their payloads, sorted (UDP
    /// order is not guaranteed even on loopback).
    fn recv_all(peer: &UdpSocket, n: usize) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 256];
        let mut got: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let (len, _) = peer.recv_from(&mut buf).expect("datagram arrives");
                buf[..len].to_vec()
            })
            .collect();
        got.sort();
        got
    }

    #[test]
    fn flush_of_one_packet_takes_the_single_shot_path() {
        let (udp, peer, counters) = flush_fixture();
        let mut io = SendIo::new(4);
        let arena = b"solo".to_vec();
        let to = NodeAddr::from(peer.local_addr().expect("addr"));
        io.flush(&udp, &counters, &arena, &[(to, 0..4)]);
        assert_eq!(recv_all(&peer, 1), vec![b"solo".to_vec()]);
        assert_eq!(counters.send_syscalls.load(Ordering::Relaxed), 1);
        assert_eq!(counters.sendmmsg_batches.load(Ordering::Relaxed), 0);
        assert_eq!(counters.datagrams_sent.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn flush_of_exactly_one_batch_is_one_syscall() {
        let (udp, peer, counters) = flush_fixture();
        let mut io = SendIo::new(4);
        let arena: Vec<u8> = (0u8..4).collect();
        let to = NodeAddr::from(peer.local_addr().expect("addr"));
        let packets: Vec<_> = (0usize..4).map(|i| (to, i..i + 1)).collect();
        io.flush(&udp, &counters, &arena, &packets);
        assert_eq!(
            recv_all(&peer, 4),
            vec![vec![0u8], vec![1], vec![2], vec![3]]
        );
        assert_eq!(counters.send_syscalls.load(Ordering::Relaxed), 1);
        assert_eq!(counters.sendmmsg_batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.datagrams_sent.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn flush_overflowing_the_batch_spills_into_a_second_syscall() {
        let (udp, peer, counters) = flush_fixture();
        let mut io = SendIo::new(4);
        let arena: Vec<u8> = (0u8..5).collect();
        let to = NodeAddr::from(peer.local_addr().expect("addr"));
        let packets: Vec<_> = (0usize..5).map(|i| (to, i..i + 1)).collect();
        io.flush(&udp, &counters, &arena, &packets);
        assert_eq!(
            recv_all(&peer, 5),
            vec![vec![0u8], vec![1], vec![2], vec![3], vec![4]]
        );
        // One full sendmmsg of 4, then the single-packet tail.
        assert_eq!(counters.send_syscalls.load(Ordering::Relaxed), 2);
        assert_eq!(counters.sendmmsg_batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.datagrams_sent.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn nonblocking_connect_reaches_a_loopback_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (stream, connected) = polling::sock::connect_stream(addr).expect("connect starts");
        // Whether it completed inline or is in progress, the listener
        // must observe the connection.
        let (_, peer) = listener.accept().expect("accept");
        if !connected {
            // Completion is observable as SO_ERROR == 0.
            let poller = Poller::new().expect("poller");
            poller.add(&stream, Event::writable(1)).expect("add");
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(events.iter().any(|e| e.key == 1));
        }
        assert!(stream.take_error().expect("so_error").is_none());
        assert_eq!(peer.ip(), addr.ip());
    }

    #[test]
    fn nonblocking_connect_to_a_dead_port_reports_failure() {
        // Bind-then-drop guarantees the port is unused.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        match polling::sock::connect_stream(dead) {
            Err(_) => {} // refused inline
            Ok((stream, _)) => {
                let poller = Poller::new().expect("poller");
                poller.add(&stream, Event::writable(1)).expect("add");
                let mut events = Events::new();
                let _ = poller.wait(&mut events, Some(Duration::from_secs(5)));
                assert!(
                    stream.take_error().expect("so_error readable").is_some(),
                    "connect to a closed loopback port must fail"
                );
            }
        }
    }
}
