//! A memberlist-style agent: the protocol core driven by real sockets.
//!
//! [`Agent::start`] binds one UDP socket and one TCP listener on the
//! same port and spawns three background threads:
//!
//! * the **datagram loop** receives UDP packets and feeds them to the
//!   protocol core;
//! * the **stream loop** accepts TCP connections carrying framed
//!   push-pull / fallback-probe messages;
//! * the **ticker** fires the core's timers at their deadlines.
//!
//! Membership conclusions are delivered on a channel as [`AgentEvent`]s.

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use lifeguard_core::config::Config;
use lifeguard_core::event::Event;
use lifeguard_core::member::Member;
use lifeguard_core::node::{Output, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{NodeAddr, NodeName};
use parking_lot::Mutex;

use crate::transport;

/// A timestamped membership event from a running agent.
#[derive(Clone, Debug)]
pub struct AgentEvent {
    /// Agent-relative time the conclusion was reached.
    pub at: Time,
    /// The conclusion.
    pub event: Event,
}

/// Configuration for [`Agent::start`].
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// Unique node name.
    pub name: String,
    /// Address to bind (UDP and TCP, same port). Use port 0 to let the
    /// OS pick.
    pub bind: SocketAddr,
    /// Protocol configuration.
    pub protocol: Config,
    /// RNG seed for the protocol core.
    pub seed: u64,
}

impl AgentConfig {
    /// Localhost agent with an OS-assigned port.
    pub fn local(name: impl Into<String>) -> Self {
        AgentConfig {
            name: name.into(),
            bind: "127.0.0.1:0".parse().expect("valid literal"),
            protocol: Config::lan().lifeguard(),
            seed: 0,
        }
    }

    /// Replaces the protocol configuration.
    pub fn protocol(mut self, protocol: Config) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

struct Inner {
    node: Mutex<SwimNode>,
    udp: UdpSocket,
    advertised: NodeAddr,
    start: Instant,
    shutdown: AtomicBool,
    events_tx: Sender<AgentEvent>,
}

impl Inner {
    fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Executes protocol outputs against the real network.
    fn execute(self: &Arc<Self>, outputs: Vec<Output>, now: Time) {
        for output in outputs {
            match output {
                Output::Packet { to, payload } => {
                    let _ = self.udp.send_to(&payload, to.socket_addr());
                }
                Output::Stream { to, msg } => {
                    // Stream sends may block up to the connect timeout;
                    // do them off the protocol threads.
                    let advertised = self.advertised;
                    std::thread::spawn(move || {
                        let _ = transport::send_stream(to.socket_addr(), advertised, &msg);
                    });
                }
                Output::Event(event) => {
                    let _ = self.events_tx.send(AgentEvent { at: now, event });
                }
            }
        }
    }
}

/// A running group member over real UDP/TCP sockets.
///
/// Dropping the agent (or calling [`Agent::shutdown`]) stops it
/// *abruptly*, which peers will detect as a failure; call
/// [`Agent::leave`] first for a graceful departure.
pub struct Agent {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    events_rx: Receiver<AgentEvent>,
}

impl Agent {
    /// Binds sockets, starts the protocol core and spawns the driver
    /// threads.
    ///
    /// # Errors
    ///
    /// Fails if the UDP socket and TCP listener cannot be bound to the
    /// same address.
    pub fn start(config: AgentConfig) -> io::Result<Agent> {
        // Bind TCP first (possibly port 0), then UDP on the same port.
        let tcp = TcpListener::bind(config.bind)?;
        let addr = tcp.local_addr()?;
        let udp = UdpSocket::bind(addr)?;
        udp.set_read_timeout(Some(Duration::from_millis(20)))?;
        tcp.set_nonblocking(true)?;

        let advertised = NodeAddr::from(addr);
        let (events_tx, events_rx) = unbounded();
        let mut node = SwimNode::new(
            NodeName::from(config.name),
            advertised,
            config.protocol,
            config.seed,
        );
        let start = Instant::now();
        let boot = node.start(Time::ZERO);
        let inner = Arc::new(Inner {
            node: Mutex::new(node),
            udp,
            advertised,
            start,
            shutdown: AtomicBool::new(false),
            events_tx,
        });
        inner.execute(boot, Time::ZERO);

        let mut threads = Vec::new();
        // Datagram loop.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match inner.udp.recv_from(&mut buf) {
                        Ok((len, from)) => {
                            let now = inner.now();
                            let outputs = {
                                let mut node = inner.node.lock();
                                node.handle_datagram(NodeAddr::from(from), &buf[..len], now)
                            };
                            if let Ok(outputs) = outputs {
                                inner.execute(outputs, now);
                            }
                        }
                        Err(ref e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
            }));
        }
        // Stream loop.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match tcp.accept() {
                        Ok((mut stream, _)) => {
                            let _ = stream.set_read_timeout(Some(transport::STREAM_TIMEOUT));
                            if let Ok((from, msg)) = transport::read_frame(&mut stream) {
                                let now = inner.now();
                                let outputs = {
                                    let mut node = inner.node.lock();
                                    node.handle_stream(from, msg, now)
                                };
                                inner.execute(outputs, now);
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        // Ticker.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    let now = inner.now();
                    let (outputs, next) = {
                        let mut node = inner.node.lock();
                        let outputs = match node.next_wake() {
                            Some(wake) if wake <= now => node.tick(now),
                            _ => Vec::new(),
                        };
                        (outputs, node.next_wake())
                    };
                    inner.execute(outputs, now);
                    let sleep = next
                        .map(|w| w.saturating_since(inner.now()))
                        .unwrap_or(Duration::from_millis(20))
                        .min(Duration::from_millis(20))
                        .max(Duration::from_millis(1));
                    std::thread::sleep(sleep);
                }
            }));
        }

        Ok(Agent {
            inner,
            threads,
            events_rx,
        })
    }

    /// The agent's advertised address (bound UDP/TCP port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.advertised.socket_addr()
    }

    /// The agent's node name.
    pub fn name(&self) -> NodeName {
        self.inner.node.lock().name().clone()
    }

    /// Joins a cluster through the given seed addresses.
    pub fn join(&self, seeds: &[SocketAddr]) {
        let now = self.inner.now();
        let outputs = {
            let mut node = self.inner.node.lock();
            let seeds: Vec<NodeAddr> = seeds.iter().map(|&s| NodeAddr::from(s)).collect();
            node.join(&seeds, now)
        };
        self.inner.execute(outputs, now);
    }

    /// Gracefully leaves the group (peers observe a leave, not a
    /// failure).
    pub fn leave(&self) {
        let now = self.inner.now();
        let outputs = self.inner.node.lock().leave(now);
        self.inner.execute(outputs, now);
    }

    /// Snapshot of the membership table.
    pub fn members(&self) -> Vec<Member> {
        self.inner.node.lock().members().cloned().collect()
    }

    /// Number of members believed alive (including self).
    pub fn num_alive(&self) -> usize {
        self.inner.node.lock().num_alive()
    }

    /// Current Local Health Multiplier score.
    pub fn local_health(&self) -> u32 {
        self.inner.node.lock().local_health()
    }

    /// The membership event channel.
    pub fn events(&self) -> &Receiver<AgentEvent> {
        &self.events_rx
    }

    /// Stops the agent abruptly (no leave message) and joins its
    /// threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Threads exit on their next poll; detach rather than join so
        // drop never blocks (C-DTOR-BLOCK).
    }
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("addr", &self.addr())
            .field("num_alive", &self.num_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A sped-up protocol config so socket tests finish in seconds.
    fn fast() -> Config {
        let mut cfg = Config::lan()
            .lifeguard()
            .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
        cfg.gossip_interval = Duration::from_millis(50);
        cfg.suspicion_alpha = 3.0;
        cfg.suspicion_beta = 2.0;
        cfg.push_pull_interval = Some(Duration::from_secs(2));
        cfg
    }

    fn wait_for(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if check() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    #[test]
    fn three_agents_converge_over_localhost() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(1)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(2)).unwrap();
        let c = Agent::start(AgentConfig::local("c").protocol(fast()).seed(3)).unwrap();
        b.join(&[a.addr()]);
        c.join(&[a.addr()]);
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.num_alive() == 3 && b.num_alive() == 3 && c.num_alive() == 3
            }),
            "agents failed to converge: a={} b={} c={}",
            a.num_alive(),
            b.num_alive(),
            c.num_alive()
        );
        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn abrupt_shutdown_is_detected_as_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(4)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(5)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2
            && b.num_alive() == 2));
        b.shutdown();
        // Suspicion min = 3 * max(1, log10(2)) * 200ms = 600ms, max 1.2s.
        assert!(
            wait_for(Duration::from_secs(20), || {
                a.events().try_iter().any(|e| {
                    matches!(&e.event, Event::MemberFailed { name, .. } if name.as_str() == "b")
                }) || a
                    .members()
                    .iter()
                    .any(|m| m.name.as_str() == "b" && !m.is_live())
            }),
            "b's failure was never detected"
        );
        a.shutdown();
    }

    #[test]
    fn graceful_leave_is_not_a_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(6)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(7)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2));
        b.leave();
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.events()
                    .try_iter()
                    .any(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "b"))
            }),
            "leave event never observed"
        );
        b.shutdown();
        a.shutdown();
    }
}
