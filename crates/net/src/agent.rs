//! A memberlist-style agent: the protocol core driven by real sockets.
//!
//! The agent is a thin I/O shell around the shared sans-I/O
//! [`Driver`] harness from `lifeguard-core` — the same harness the
//! deterministic simulator uses, so the protocol logic running here is
//! *identical* to the simulated one. [`Agent::start`] binds one UDP
//! socket and one TCP listener on the same port and hands them to one
//! of two runtimes (see [`Runtime`]):
//!
//! * **[`Runtime::Reactor`]** (the default): a single readiness-driven
//!   event-loop thread over the [`polling`] poller — nonblocking
//!   accept/read/write state machines for TCP, exact-deadline timer
//!   wakeups off the core's timer wheel, no fixed-interval sleeps
//!   anywhere (`crates/net/src/reactor.rs`).
//! * **[`Runtime::Threaded`]**: the legacy four-thread layout (UDP
//!   reader blocking with a read timeout, poll-gated accept loop,
//!   deadline-chasing ticker, fixed stream-writer pool), kept during
//!   the migration and as a behavioural cross-check.
//!
//! UDP transmits happen inline from the driver's sink with zero copies:
//! the packet payload is borrowed straight from the protocol core's
//! scratch buffer into `send_to`.
//!
//! Membership conclusions are delivered on a channel as [`AgentEvent`]s.
//!
//! Shutdown is idempotent and [`Drop`] also performs it, joining every
//! spawned thread — a dropped-without-`shutdown` agent no longer leaks
//! its driver threads.

use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lifeguard_core::config::Config;
use lifeguard_core::driver::{Driver, Sink};
use lifeguard_core::event::Event;
use lifeguard_core::member::Member;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{Message, NodeAddr, NodeName};
use parking_lot::Mutex;
use polling::{Event as PollEvent, Events, Poller};

use crate::reactor::{self, Reactor};
use crate::transport;

/// A timestamped membership event from a running agent.
#[derive(Clone, Debug)]
pub struct AgentEvent {
    /// Agent-relative time the conclusion was reached.
    pub at: Time,
    /// The conclusion.
    pub event: Event,
}

/// Which I/O runtime drives the protocol core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Runtime {
    /// One readiness-driven event-loop thread (nonblocking sockets,
    /// poll-based wakeups, exact timer deadlines). The default.
    #[default]
    Reactor,
    /// The legacy blocking-thread layout: UDP reader, accept loop,
    /// ticker, and a fixed stream-writer pool. Kept for migration and
    /// as a cross-check; probe handling is readiness-gated too (no
    /// sleep-backoff quantisation), but tick precision is bounded by
    /// the ticker's 1 ms floor.
    Threaded,
}

/// Largest per-syscall batch the kernel accepts (`UIO_MAXIOV`): both
/// the sendmmsg flush size and the recvmmsg ring are capped here.
pub const MAX_IO_BATCH: usize = 1024;

/// Default sendmmsg flush size: packets deferred per burst before the
/// batch is handed to the kernel in one syscall.
pub const DEFAULT_SEND_BATCH: usize = 64;

/// Default recvmmsg ring slots: datagrams received per syscall.
pub const DEFAULT_RECV_BURST: usize = 16;

/// Default bound on datagrams drained per readiness event before the
/// reactor yields back to its loop (level-triggered readiness
/// re-reports anything left).
pub const DEFAULT_DATAGRAM_BURST: usize = 1024;

/// An invalid [`AgentConfig`] field, reported by
/// [`AgentConfig::validate`] (and by [`Agent::start`], wrapped in
/// [`io::ErrorKind::InvalidInput`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AgentConfigError {
    /// `io_batch.batch_size` is zero — a flush could never send.
    ZeroSendBatch,
    /// `io_batch.batch_size` exceeds [`MAX_IO_BATCH`] (`UIO_MAXIOV`:
    /// the kernel would truncate the batch).
    SendBatchTooLarge {
        /// The rejected value.
        got: usize,
    },
    /// `io_batch.recv_burst` is zero — a receive ring with no slots.
    ZeroRecvBurst,
    /// `io_batch.recv_burst` exceeds [`MAX_IO_BATCH`].
    RecvBurstTooLarge {
        /// The rejected value.
        got: usize,
    },
    /// `io_batch.max_burst` is zero — the reactor could never drain a
    /// readable socket.
    ZeroDatagramBurst,
}

impl std::fmt::Display for AgentConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentConfigError::ZeroSendBatch => write!(f, "io_batch.batch_size must be at least 1"),
            AgentConfigError::SendBatchTooLarge { got } => write!(
                f,
                "io_batch.batch_size {got} exceeds the kernel bound {MAX_IO_BATCH} (UIO_MAXIOV)"
            ),
            AgentConfigError::ZeroRecvBurst => write!(f, "io_batch.recv_burst must be at least 1"),
            AgentConfigError::RecvBurstTooLarge { got } => write!(
                f,
                "io_batch.recv_burst {got} exceeds the kernel bound {MAX_IO_BATCH} (UIO_MAXIOV)"
            ),
            AgentConfigError::ZeroDatagramBurst => {
                write!(f, "io_batch.max_burst must be at least 1")
            }
        }
    }
}

impl std::error::Error for AgentConfigError {}

/// Batched-I/O tuning for the reactor runtime's UDP datapath.
///
/// With `batching` on (the default), the reactor defers the packets
/// each drive produces and flushes a whole burst with one
/// `sendmmsg(2)`, and drains inbound readiness through a preallocated
/// `recvmmsg(2)` ring instead of one `recv_from` (plus one payload
/// copy) per datagram. The wire behaviour is identical — batching
/// changes syscall counts, never packet contents or order.
///
/// [`Runtime::Threaded`] ignores everything except `max_burst`
/// (its blocking reader has no burst concept to bound); the flag
/// exists so the same config can A/B the two datapaths on the reactor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoBatchConfig {
    /// Use `sendmmsg`/`recvmmsg` on the reactor (default `true`).
    /// Kernels without the syscalls fall back to single-shot I/O
    /// automatically; this flag forces the fallback for comparison.
    pub batching: bool,
    /// Packets accumulated per send flush, in `1..=`[`MAX_IO_BATCH`]
    /// (default [`DEFAULT_SEND_BATCH`]). A burst larger than this is
    /// split across several syscalls; a batch of one degenerates to
    /// plain `send_to`.
    pub batch_size: usize,
    /// Receive-ring slots filled per `recvmmsg`, in
    /// `1..=`[`MAX_IO_BATCH`] (default [`DEFAULT_RECV_BURST`]). Each
    /// slot holds a full 64 KiB datagram, so memory is
    /// `recv_burst × 64 KiB` per agent.
    pub recv_burst: usize,
    /// Most datagrams drained per readiness event before the reactor
    /// yields back to its loop (default [`DEFAULT_DATAGRAM_BURST`];
    /// formerly the hardcoded `MAX_DATAGRAM_BURST`).
    pub max_burst: usize,
}

impl Default for IoBatchConfig {
    fn default() -> Self {
        IoBatchConfig {
            batching: true,
            batch_size: DEFAULT_SEND_BATCH,
            recv_burst: DEFAULT_RECV_BURST,
            max_burst: DEFAULT_DATAGRAM_BURST,
        }
    }
}

impl IoBatchConfig {
    /// Single-shot I/O (`batching: false`) with default bounds — the
    /// pre-batching datapath, kept addressable for A/B runs.
    pub fn single_shot() -> Self {
        IoBatchConfig {
            batching: false,
            ..IoBatchConfig::default()
        }
    }

    /// Checks every field against its documented range.
    ///
    /// # Errors
    ///
    /// The first violated bound, as a typed [`AgentConfigError`].
    pub fn validate(&self) -> Result<(), AgentConfigError> {
        if self.batch_size == 0 {
            return Err(AgentConfigError::ZeroSendBatch);
        }
        if self.batch_size > MAX_IO_BATCH {
            return Err(AgentConfigError::SendBatchTooLarge {
                got: self.batch_size,
            });
        }
        if self.recv_burst == 0 {
            return Err(AgentConfigError::ZeroRecvBurst);
        }
        if self.recv_burst > MAX_IO_BATCH {
            return Err(AgentConfigError::RecvBurstTooLarge {
                got: self.recv_burst,
            });
        }
        if self.max_burst == 0 {
            return Err(AgentConfigError::ZeroDatagramBurst);
        }
        Ok(())
    }
}

/// Configuration for [`Agent::start`].
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// Unique node name.
    pub name: String,
    /// Address to bind (UDP and TCP, same port). Use port 0 to let the
    /// OS pick.
    pub bind: SocketAddr,
    /// Protocol configuration.
    pub protocol: Config,
    /// RNG seed for the protocol core. `0` (the default) means
    /// *unseeded*: [`Agent::start`] derives a fresh per-instance seed
    /// from system entropy, so a restarted agent never reuses the
    /// delta-sync epoch of its previous life (stale peer watermarks
    /// must be detected, not honoured). Set a nonzero seed for
    /// reproducible runs — and never reuse it across restarts of the
    /// same logical node.
    pub seed: u64,
    /// The I/O runtime (defaults to [`Runtime::Reactor`]).
    pub runtime: Runtime,
    /// Largest accepted inbound stream frame body, in bytes (defaults
    /// to [`transport::MAX_STREAM_FRAME`]). Oversized length prefixes
    /// are rejected before any buffer is allocated for them.
    pub max_stream_frame: usize,
    /// Batched-I/O tuning for the reactor's UDP datapath (see
    /// [`IoBatchConfig`]; defaults to batching on).
    pub io_batch: IoBatchConfig,
}

impl AgentConfig {
    /// Localhost agent with an OS-assigned port.
    pub fn local(name: impl Into<String>) -> Self {
        AgentConfig {
            name: name.into(),
            bind: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            protocol: Config::lan().lifeguard(),
            seed: 0,
            runtime: Runtime::default(),
            max_stream_frame: transport::MAX_STREAM_FRAME,
            io_batch: IoBatchConfig::default(),
        }
    }

    /// Replaces the protocol configuration.
    pub fn protocol(mut self, protocol: Config) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the I/O runtime.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the largest accepted inbound stream frame body, in bytes.
    pub fn max_stream_frame(mut self, bytes: usize) -> Self {
        self.max_stream_frame = bytes;
        self
    }

    /// Replaces the batched-I/O tuning.
    pub fn io_batch(mut self, io_batch: IoBatchConfig) -> Self {
        self.io_batch = io_batch;
        self
    }

    /// Checks the agent-level fields (the protocol [`Config`] has its
    /// own [`Config::validate`], which [`Agent::start`] also runs).
    ///
    /// # Errors
    ///
    /// The first violated bound, as a typed [`AgentConfigError`].
    pub fn validate(&self) -> Result<(), AgentConfigError> {
        self.io_batch.validate()
    }
}

/// An outbound stream message: destination plus the not-yet-encoded
/// message (framing happens off the driver lock — on a writer thread
/// in the threaded runtime, on the reactor loop in the reactor
/// runtime, in both cases never while a large push-pull would hold the
/// protocol core hostage).
pub(crate) type StreamJob = (SocketAddr, Message);

/// Writer threads in the threaded runtime's stream pool. Bounds the
/// damage of blocking connects to unreachable peers (each can stall one
/// writer for up to [`transport::STREAM_TIMEOUT`]) without reverting to
/// the seed's thread-spawn-per-send.
const STREAM_WRITERS: usize = 4;

/// How long the threaded runtime's loops sleep at most before
/// re-checking the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(20);

/// Per-agent datagram I/O counters (lock-free; written by the sink and
/// runtime threads, snapshotted by [`Agent::stats`]). Dropped sends in
/// particular are *counted*, not just discarded: SWIM treats every
/// datagram as droppable, but an operator debugging a silent cluster
/// needs to see whether the drops happen locally or in the network.
#[derive(Debug, Default)]
pub(crate) struct IoCounters {
    /// Send syscalls issued (`send_to` and `sendmmsg` each count 1).
    pub(crate) send_syscalls: AtomicU64,
    /// `sendmmsg` flushes that transferred more than one datagram.
    pub(crate) sendmmsg_batches: AtomicU64,
    /// Datagrams the kernel accepted for sending.
    pub(crate) datagrams_sent: AtomicU64,
    /// Payload bytes of the datagrams the kernel accepted.
    pub(crate) datagram_bytes: AtomicU64,
    /// Datagrams dropped on a send error other than `WouldBlock`.
    pub(crate) send_errors: AtomicU64,
    /// Datagrams dropped because the socket's send buffer was full.
    pub(crate) would_block_drops: AtomicU64,
    /// Receive syscalls issued (`recv_from` and `recvmmsg` each
    /// count 1, including ones that return `WouldBlock`).
    pub(crate) recv_syscalls: AtomicU64,
    /// Datagrams received.
    pub(crate) datagrams_received: AtomicU64,
    /// Received datagrams dropped because they overflowed a
    /// receive-ring slot (`MSG_TRUNC`).
    pub(crate) recv_truncations: AtomicU64,
    /// Stream messages handed to the stream transport.
    pub(crate) streams_sent: AtomicU64,
    /// Encoded message bytes of those stream sends (body, excluding
    /// the fixed frame header — the unit the sim telemetry counts).
    pub(crate) stream_bytes: AtomicU64,
    /// Reactor event-loop wakeups (poll returns); zero under the
    /// threaded runtime.
    pub(crate) wakeups: AtomicU64,
}

impl IoCounters {
    /// The counters in the metrics plane's runtime-agnostic shape;
    /// [`IoStats`] is derived from this, not the other way round.
    fn io_snapshot(&self) -> lifeguard_metrics::IoSnapshot {
        lifeguard_metrics::IoSnapshot {
            send_syscalls: self.send_syscalls.load(Ordering::Relaxed),
            sendmmsg_batches: self.sendmmsg_batches.load(Ordering::Relaxed),
            datagrams_sent: self.datagrams_sent.load(Ordering::Relaxed),
            datagram_bytes: self.datagram_bytes.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            would_block_drops: self.would_block_drops.load(Ordering::Relaxed),
            recv_syscalls: self.recv_syscalls.load(Ordering::Relaxed),
            datagrams_received: self.datagrams_received.load(Ordering::Relaxed),
            recv_truncations: self.recv_truncations.load(Ordering::Relaxed),
            streams_sent: self.streams_sent.load(Ordering::Relaxed),
            stream_bytes: self.stream_bytes.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }

    fn snapshot(&self) -> IoStats {
        IoStats::from(self.io_snapshot())
    }
}

/// A snapshot of one agent's datagram I/O counters ([`Agent::stats`]).
///
/// `datagrams_sent / send_syscalls` is the send-side batching factor;
/// the three drop counters (`send_errors`, `would_block_drops`,
/// `recv_truncations`) expose datagrams that earlier versions discarded
/// silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Send syscalls issued (`send_to` and `sendmmsg` each count 1).
    pub send_syscalls: u64,
    /// `sendmmsg` flushes that transferred more than one datagram.
    pub sendmmsg_batches: u64,
    /// Datagrams the kernel accepted for sending.
    pub datagrams_sent: u64,
    /// Datagrams dropped on a send error other than `WouldBlock`.
    pub send_errors: u64,
    /// Datagrams dropped because the socket's send buffer was full.
    pub would_block_drops: u64,
    /// Receive syscalls issued (including `WouldBlock` probes).
    pub recv_syscalls: u64,
    /// Datagrams received.
    pub datagrams_received: u64,
    /// Received datagrams dropped as truncated (`MSG_TRUNC`).
    pub recv_truncations: u64,
}

impl From<lifeguard_metrics::IoSnapshot> for IoStats {
    fn from(s: lifeguard_metrics::IoSnapshot) -> IoStats {
        IoStats {
            send_syscalls: s.send_syscalls,
            sendmmsg_batches: s.sendmmsg_batches,
            datagrams_sent: s.datagrams_sent,
            send_errors: s.send_errors,
            would_block_drops: s.would_block_drops,
            recv_syscalls: s.recv_syscalls,
            datagrams_received: s.datagrams_received,
            recv_truncations: s.recv_truncations,
        }
    }
}

/// The agent's [`Sink`]: UDP transmits go straight to the socket
/// (borrowing the core's scratch buffer — no copy), stream messages are
/// queued for the stream writer (pool or reactor), events go to the
/// subscriber channel.
pub(crate) struct NetSink<'a> {
    pub(crate) udp: &'a UdpSocket,
    pub(crate) counters: &'a IoCounters,
    stream_tx: &'a Sender<StreamJob>,
    events_tx: &'a Sender<AgentEvent>,
    now: Time,
}

/// One counted `send_to`. Send errors — including `WouldBlock` from a
/// full send buffer on the reactor's nonblocking socket — drop the
/// datagram. That is the UDP contract the protocol is built for: SWIM
/// treats every datagram as droppable, and a full local buffer is
/// indistinguishable from loss in the network. The counters make the
/// drops observable. Shared between [`NetSink::transmit`] and the
/// reactor's batch-flush fallback paths.
pub(crate) fn send_counted(
    udp: &UdpSocket,
    counters: &IoCounters,
    to: SocketAddr,
    payload: &[u8],
) {
    counters.send_syscalls.fetch_add(1, Ordering::Relaxed);
    match udp.send_to(payload, to) {
        Ok(_) => {
            counters.datagrams_sent.fetch_add(1, Ordering::Relaxed);
            counters
                .datagram_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        }
        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
            counters.would_block_drops.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            counters.send_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Sink for NetSink<'_> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        send_counted(self.udp, self.counters, to.socket_addr(), payload);
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        // Hand the message over untouched: a push-pull carries the
        // whole membership table, and both its encoding and the
        // connect/write belong off the protocol path (the driver lock
        // is held while the sink runs). Counted here — the one point
        // both runtimes share — with the encoded body length, the same
        // unit the sim's telemetry records.
        self.counters.streams_sent.fetch_add(1, Ordering::Relaxed);
        self.counters.stream_bytes.fetch_add(
            lifeguard_proto::codec::encoded_len(&msg) as u64,
            Ordering::Relaxed,
        );
        let _ = self.stream_tx.send((to.socket_addr(), msg));
    }

    fn event(&mut self, event: Event) {
        let _ = self.events_tx.send(AgentEvent {
            at: self.now,
            event,
        });
    }
}

pub(crate) struct Inner {
    pub(crate) driver: Mutex<Driver>,
    pub(crate) udp: UdpSocket,
    pub(crate) advertised: NodeAddr,
    pub(crate) max_stream_frame: usize,
    start: Instant,
    pub(crate) shutdown: AtomicBool,
    events_tx: Sender<AgentEvent>,
    stream_tx: Sender<StreamJob>,
    /// The reactor runtime's poller (None under [`Runtime::Threaded`]):
    /// drives from API threads notify it so the event loop re-reads the
    /// next deadline and picks up queued stream jobs.
    poller: Option<Arc<Poller>>,
    /// Datagram batching knobs, frozen at start ([`AgentConfig::io_batch`]).
    pub(crate) io_batch: IoBatchConfig,
    pub(crate) counters: IoCounters,
}

impl Inner {
    pub(crate) fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Builds the agent's [`Sink`] over its socket, channels and
    /// counters for one drive.
    pub(crate) fn sink(&self, now: Time) -> NetSink<'_> {
        NetSink {
            udp: &self.udp,
            counters: &self.counters,
            stream_tx: &self.stream_tx,
            events_tx: &self.events_tx,
            now,
        }
    }

    /// Feeds one input through the shared driver harness; the sink
    /// executes every effect against the real network before the driver
    /// lock is released.
    pub(crate) fn drive(&self, input: Input, now: Time) {
        {
            let mut driver = self.driver.lock();
            let mut sink = self.sink(now);
            // lint: allow(lock_discipline) — by design: effects are sent under the driver lock so network order matches protocol order; the UDP socket is non-blocking, so the send cannot park the lock holder
            let _ = driver.handle(input, now, &mut sink);
        }
        // The drive may have armed an earlier timer or queued a stream
        // job; wake the reactor so it re-plans. The reactor's own
        // drives skip this — its loop re-computes before every wait.
        if let Some(poller) = &self.poller {
            if !reactor::on_reactor_thread() {
                let _ = poller.notify();
            }
        }
    }
}

/// A running group member over real UDP/TCP sockets.
///
/// Dropping the agent (or calling [`Agent::shutdown`]) stops it
/// *abruptly*, which peers will detect as a failure; call
/// [`Agent::leave`] first for a graceful departure.
pub struct Agent {
    inner: Arc<Inner>,
    // bounded: filled once at startup with the runtime's fixed thread set, drained on shutdown
    threads: Mutex<Vec<JoinHandle<()>>>,
    events_rx: Receiver<AgentEvent>,
}

impl Agent {
    /// Binds sockets, starts the protocol core and spawns the runtime
    /// (one reactor thread, or the legacy thread set — see
    /// [`AgentConfig::runtime`]).
    ///
    /// # Errors
    ///
    /// Fails if the protocol configuration is invalid
    /// ([`io::ErrorKind::InvalidInput`]), the UDP socket and TCP
    /// listener cannot be bound to the same address, or the poller
    /// cannot be created.
    pub fn start(config: AgentConfig) -> io::Result<Agent> {
        // Reject nonsense configs before touching the network.
        config
            .protocol
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // Bind TCP first (possibly port 0), then UDP on the same port.
        let tcp = TcpListener::bind(config.bind)?;
        let addr = tcp.local_addr()?;
        let udp = UdpSocket::bind(addr)?;
        tcp.set_nonblocking(true)?;
        match config.runtime {
            // The reactor reads the socket only when poll reports it
            // readable; recv must never block the loop.
            Runtime::Reactor => udp.set_nonblocking(true)?,
            // The threaded reader blocks *on the socket* — woken by
            // arrival, no sleep backoff — with a timeout only to
            // observe the shutdown flag.
            Runtime::Threaded => udp.set_read_timeout(Some(SHUTDOWN_POLL))?,
        }

        let advertised = NodeAddr::from(addr);
        let seed = if config.seed == 0 {
            // Unseeded: derive per-instance entropy. The protocol
            // core's delta-sync epoch is a pure function of the seed,
            // so a process that restarts with the same seed would keep
            // its epoch and peers would trust watermarks from its
            // previous life.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            nanos ^ ((std::process::id() as u64) << 32) ^ (addr.port() as u64)
        } else {
            config.seed
        };
        // Built once, referenced twice: the clone below seeds the
        // reactor thread, the original lands in `Inner` for wakeups.
        let (poller, reactor_poller) = match config.runtime {
            Runtime::Reactor => {
                let p = Arc::new(Poller::new()?);
                (Some(Arc::clone(&p)), Some(p))
            }
            Runtime::Threaded => (None, None),
        };
        let (events_tx, events_rx) = unbounded();
        let (stream_tx, stream_rx) = unbounded::<StreamJob>();
        let node = SwimNode::new(
            NodeName::from(config.name),
            advertised,
            config.protocol,
            seed,
        );
        let inner = Arc::new(Inner {
            driver: Mutex::new(Driver::new(node)),
            udp,
            advertised,
            max_stream_frame: config.max_stream_frame,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            events_tx,
            stream_tx,
            poller,
            io_batch: config.io_batch,
            counters: IoCounters::default(),
        });
        {
            let mut driver = inner.driver.lock();
            let mut sink = inner.sink(Time::ZERO);
            // lint: allow(lock_discipline) — by design: startup effects flush under the lock before any thread can observe the agent; the socket is non-blocking
            driver.start(Time::ZERO, &mut sink);
        }

        let threads = if let Some(poller) = reactor_poller {
            // Registration happens in `new`, before the thread
            // spawns: a failure here returns Err instead of a
            // running-but-deaf agent.
            let reactor = Reactor::new(Arc::clone(&inner), poller, tcp, stream_rx)?;
            vec![std::thread::spawn(move || reactor.run())]
        } else {
            Self::spawn_threaded(&inner, tcp, stream_rx)?
        };

        Ok(Agent {
            inner,
            threads: Mutex::new(threads),
            events_rx,
        })
    }

    /// The legacy runtime: UDP reader, accept loop, ticker and stream
    /// writer pool as separate blocking threads.
    fn spawn_threaded(
        inner: &Arc<Inner>,
        tcp: TcpListener,
        stream_rx: Receiver<StreamJob>,
    ) -> io::Result<Vec<JoinHandle<()>>> {
        // Everything fallible happens before the first spawn, so an
        // error cannot leak already-running threads out of a failed
        // `Agent::start`.
        let accept_poller = Poller::new()?;
        accept_poller.add(&tcp, PollEvent::readable(0))?;
        let mut threads = Vec::new();
        // Datagram loop: blocks on the socket itself (no sleep backoff,
        // so probe handling latency is arrival-driven, not quantised);
        // the read timeout exists only to observe the shutdown flag.
        {
            let inner = Arc::clone(inner);
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !inner.shutdown.load(Ordering::Relaxed) {
                    let recv = inner.udp.recv_from(&mut buf);
                    inner
                        .counters
                        .recv_syscalls
                        .fetch_add(1, Ordering::Relaxed);
                    match recv {
                        Ok((len, from)) => {
                            inner
                                .counters
                                .datagrams_received
                                .fetch_add(1, Ordering::Relaxed);
                            let now = inner.now();
                            inner.drive(
                                Input::Datagram {
                                    from: NodeAddr::from(from),
                                    payload: Bytes::copy_from_slice(&buf[..len]),
                                },
                                now,
                            );
                        }
                        Err(ref e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut => {}
                        // Queued socket errors (ICMP port-unreachable
                        // from a dead peer) must not kill the reader —
                        // but a persistently erroring socket must not
                        // spin it either, so unexpected errors pay a
                        // short throttle.
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            }));
        }
        // Stream loop: the nonblocking accept is gated on real
        // listener readiness through the poller (the former fixed
        // 5 ms sleep backoff quantised TCP fallback-probe and
        // push-pull latency; a readiness wait does not).
        {
            let inner = Arc::clone(inner);
            threads.push(std::thread::spawn(move || {
                let mut events = Events::new();
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match tcp.accept() {
                        Ok((mut stream, _)) => {
                            let _ = stream.set_read_timeout(Some(transport::STREAM_TIMEOUT));
                            if let Ok((from, msg)) = transport::read_frame_with_limit(
                                &mut stream,
                                inner.max_stream_frame,
                            ) {
                                let now = inner.now();
                                inner.drive(Input::Stream { from, msg }, now);
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            let _ = accept_poller.modify(&tcp, PollEvent::readable(0));
                            let _ = accept_poller.wait(&mut events, Some(SHUTDOWN_POLL));
                        }
                        // Transient accept failures (ECONNABORTED on a
                        // reset backlog entry, EMFILE under fd
                        // pressure) must not kill the stream thread for
                        // the agent's lifetime — throttle and retry.
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            }));
        }
        // Ticker.
        {
            let inner = Arc::clone(inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    let now = inner.now();
                    let due = {
                        let driver = inner.driver.lock();
                        matches!(driver.next_wake(), Some(wake) if wake <= now)
                    };
                    if due {
                        inner.drive(Input::Tick, now);
                    }
                    let next = inner.driver.lock().next_wake();
                    let sleep = next
                        .map(|w| w.saturating_since(inner.now()))
                        .unwrap_or(SHUTDOWN_POLL)
                        .min(SHUTDOWN_POLL)
                        .max(Duration::from_millis(1));
                    std::thread::sleep(sleep);
                }
            }));
        }
        // Stream-writer pool: a few threads share the outbound queue
        // (replacing the former thread-spawn-per-send). Each job is
        // encoded and sent on the writer, so a slow or unreachable
        // destination stalls at most one writer for one stream timeout
        // while the others keep draining.
        for _ in 0..STREAM_WRITERS {
            let inner = Arc::clone(inner);
            let stream_rx = stream_rx.clone();
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    // A timeout (or disconnect) just re-checks shutdown.
                    if let Ok((to, msg)) = stream_rx.recv_timeout(SHUTDOWN_POLL) {
                        let _ = transport::send_stream(to, inner.advertised, &msg);
                    }
                }
            }));
        }
        Ok(threads)
    }

    /// The agent's advertised address (bound UDP/TCP port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.advertised.socket_addr()
    }

    /// The agent's node name.
    pub fn name(&self) -> NodeName {
        self.inner.driver.lock().node().name().clone()
    }

    /// Joins a cluster through the given seed addresses.
    pub fn join(&self, seeds: &[SocketAddr]) {
        let now = self.inner.now();
        let seeds: Vec<NodeAddr> = seeds.iter().map(|&s| NodeAddr::from(s)).collect();
        self.inner.drive(Input::Join { seeds }, now);
    }

    /// Gracefully leaves the group (peers observe a leave, not a
    /// failure).
    pub fn leave(&self) {
        let now = self.inner.now();
        self.inner.drive(Input::Leave, now);
    }

    /// Replaces the local node's application metadata and gossips the
    /// change.
    pub fn update_meta(&self, meta: Bytes) {
        let now = self.inner.now();
        self.inner.drive(Input::UpdateMeta { meta }, now);
    }

    /// Snapshot of the membership table.
    pub fn members(&self) -> Vec<Member> {
        self.inner.driver.lock().node().members().cloned().collect()
    }

    /// Number of members believed alive (including self).
    pub fn num_alive(&self) -> usize {
        self.inner.driver.lock().node().num_alive()
    }

    /// Current Local Health Multiplier score.
    pub fn local_health(&self) -> u32 {
        self.inner.driver.lock().node().local_health()
    }

    /// A snapshot of the agent's datagram I/O counters: syscalls,
    /// batching, and the three drop classes (send errors, full-buffer
    /// drops, receive truncations). A thin shim over the I/O half of
    /// [`Agent::metrics`], kept for existing callers.
    pub fn stats(&self) -> IoStats {
        self.inner.counters.snapshot()
    }

    /// The agent's full metrics export in the runtime-independent
    /// snapshot shape: the protocol core's deterministic metrics
    /// (probe RTT, suspicion lifetimes, LHM, anti-entropy volume)
    /// plus this runtime's transport counters — including reactor
    /// wakeups under [`Runtime::Reactor`]. The same shape the sim's
    /// `Cluster::metrics_snapshot` returns, so threaded, reactor and
    /// simulated runs aggregate through one `swim-metrics` pipeline.
    pub fn metrics(&self) -> lifeguard_metrics::Snapshot {
        let core = self.inner.driver.lock().metrics();
        lifeguard_metrics::Snapshot {
            core,
            io: self.inner.counters.io_snapshot(),
        }
    }

    /// The membership event channel.
    pub fn events(&self) -> &Receiver<AgentEvent> {
        &self.events_rx
    }

    /// Stops the agent abruptly (no leave message) and joins its
    /// threads. Idempotent: the second and later calls (including the
    /// one [`Drop`] performs) are no-ops.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(poller) = &self.inner.poller {
            let _ = poller.notify();
        }
        let handles: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        // Threads observe the flag within one poll interval (the
        // reactor is notified instantly); joining here guarantees a
        // dropped agent never leaks its driver threads. The bound: an
        // idle agent drops in at most tens of milliseconds, while a
        // threaded-runtime writer mid-send to an unreachable peer can
        // hold its join for up to one connect + write timeout
        // (2 × [`transport::STREAM_TIMEOUT`]) — a deliberate trade of
        // a bounded block for leak-freedom.
        self.shutdown();
    }
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("addr", &self.addr())
            .field("num_alive", &self.num_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A sped-up protocol config so socket tests finish in seconds.
    fn fast() -> Config {
        let mut cfg = Config::lan()
            .lifeguard()
            .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
        cfg.gossip_interval = Duration::from_millis(50);
        cfg.suspicion_alpha = 3.0;
        cfg.suspicion_beta = 2.0;
        cfg.push_pull_interval = Some(Duration::from_secs(2));
        cfg
    }

    fn wait_for(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if check() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    fn converge_three(runtime: Runtime, seed_base: u64) {
        let a = Agent::start(
            AgentConfig::local("a")
                .protocol(fast())
                .seed(seed_base)
                .runtime(runtime),
        )
        .unwrap();
        let b = Agent::start(
            AgentConfig::local("b")
                .protocol(fast())
                .seed(seed_base + 1)
                .runtime(runtime),
        )
        .unwrap();
        let c = Agent::start(
            AgentConfig::local("c")
                .protocol(fast())
                .seed(seed_base + 2)
                .runtime(runtime),
        )
        .unwrap();
        b.join(&[a.addr()]);
        c.join(&[a.addr()]);
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.num_alive() == 3 && b.num_alive() == 3 && c.num_alive() == 3
            }),
            "{runtime:?} agents failed to converge: a={} b={} c={}",
            a.num_alive(),
            b.num_alive(),
            c.num_alive()
        );
        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn three_agents_converge_over_localhost_reactor() {
        converge_three(Runtime::Reactor, 1);
    }

    #[test]
    fn three_agents_converge_over_localhost_threaded() {
        converge_three(Runtime::Threaded, 11);
    }

    #[test]
    fn mixed_runtimes_interoperate() {
        // The runtime is an I/O detail: a reactor agent and a threaded
        // agent speak the same protocol on the same wire.
        let a = Agent::start(
            AgentConfig::local("a")
                .protocol(fast())
                .seed(21)
                .runtime(Runtime::Reactor),
        )
        .unwrap();
        let b = Agent::start(
            AgentConfig::local("b")
                .protocol(fast())
                .seed(22)
                .runtime(Runtime::Threaded),
        )
        .unwrap();
        b.join(&[a.addr()]);
        assert!(
            wait_for(Duration::from_secs(10), || a.num_alive() == 2
                && b.num_alive() == 2),
            "mixed-runtime pair failed to converge"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn abrupt_shutdown_is_detected_as_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(4)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(5)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2
            && b.num_alive() == 2));
        b.shutdown();
        // Suspicion min = 3 * max(1, log10(2)) * 200ms = 600ms, max 1.2s.
        assert!(
            wait_for(Duration::from_secs(20), || {
                a.events().try_iter().any(|e| {
                    matches!(&e.event, Event::MemberFailed { name, .. } if name.as_str() == "b")
                }) || a
                    .members()
                    .iter()
                    .any(|m| m.name.as_str() == "b" && !m.is_live())
            }),
            "b's failure was never detected"
        );
        a.shutdown();
    }

    #[test]
    fn graceful_leave_is_not_a_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(6)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(7)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2));
        b.leave();
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.events()
                    .try_iter()
                    .any(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "b"))
            }),
            "leave event never observed"
        );
        b.shutdown();
        a.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected_before_binding() {
        let mut bad = fast();
        bad.gossip_nodes = 0;
        let err = Agent::start(AgentConfig::local("x").protocol(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn io_batch_bounds_are_validated_with_typed_errors() {
        let cases = [
            (
                IoBatchConfig {
                    batch_size: 0,
                    ..IoBatchConfig::default()
                },
                AgentConfigError::ZeroSendBatch,
            ),
            (
                IoBatchConfig {
                    batch_size: MAX_IO_BATCH + 1,
                    ..IoBatchConfig::default()
                },
                AgentConfigError::SendBatchTooLarge {
                    got: MAX_IO_BATCH + 1,
                },
            ),
            (
                IoBatchConfig {
                    recv_burst: 0,
                    ..IoBatchConfig::default()
                },
                AgentConfigError::ZeroRecvBurst,
            ),
            (
                IoBatchConfig {
                    recv_burst: MAX_IO_BATCH + 1,
                    ..IoBatchConfig::default()
                },
                AgentConfigError::RecvBurstTooLarge {
                    got: MAX_IO_BATCH + 1,
                },
            ),
            (
                IoBatchConfig {
                    max_burst: 0,
                    ..IoBatchConfig::default()
                },
                AgentConfigError::ZeroDatagramBurst,
            ),
        ];
        for (io_batch, want) in cases {
            let cfg = AgentConfig::local("x").protocol(fast()).io_batch(io_batch);
            assert_eq!(cfg.validate(), Err(want), "{io_batch:?}");
            // And Agent::start refuses before binding anything.
            let err = Agent::start(cfg).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{io_batch:?}");
        }
        assert_eq!(IoBatchConfig::default().validate(), Ok(()));
        assert_eq!(IoBatchConfig::single_shot().validate(), Ok(()));
    }

    #[test]
    fn send_failures_are_counted_not_silent() {
        let (events_tx, _events_rx) = unbounded();
        let (stream_tx, _stream_rx) = unbounded();
        let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
        let counters = IoCounters::default();
        let mut sink = NetSink {
            udp: &udp,
            counters: &counters,
            stream_tx: &stream_tx,
            events_tx: &events_tx,
            now: Time::ZERO,
        };
        // Port 0 is never a valid destination: the kernel rejects the
        // send with EINVAL, which must land in `send_errors`.
        sink.transmit(NodeAddr::new([127, 0, 0, 1], 0), b"doomed");
        let stats = counters.snapshot();
        assert_eq!(stats.send_syscalls, 1);
        assert_eq!(stats.send_errors, 1);
        assert_eq!(stats.datagrams_sent, 0);
    }

    #[test]
    fn converged_pair_reports_io_activity_in_stats() {
        for runtime in [Runtime::Reactor, Runtime::Threaded] {
            let a = Agent::start(
                AgentConfig::local("a")
                    .protocol(fast())
                    .seed(41)
                    .runtime(runtime),
            )
            .unwrap();
            let b = Agent::start(
                AgentConfig::local("b")
                    .protocol(fast())
                    .seed(42)
                    .runtime(runtime),
            )
            .unwrap();
            b.join(&[a.addr()]);
            // Membership can converge over the TCP push-pull before
            // the first UDP probe fires, so wait for the datagram
            // counters too, not just `num_alive`.
            let saw_udp = |agent: &Agent| {
                let s = agent.stats();
                s.send_syscalls > 0
                    && s.datagrams_sent > 0
                    && s.recv_syscalls > 0
                    && s.datagrams_received > 0
            };
            assert!(
                wait_for(Duration::from_secs(10), || a.num_alive() == 2
                    && b.num_alive() == 2
                    && saw_udp(&a)
                    && saw_udp(&b)),
                "{runtime:?} pair failed to converge with UDP activity: a={:?} b={:?}",
                a.stats(),
                b.stats()
            );
            for agent in [&a, &b] {
                let stats = agent.stats();
                assert_eq!(stats.recv_truncations, 0, "{runtime:?}: {stats:?}");
            }
            a.shutdown();
            b.shutdown();
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_joins_threads() {
        for runtime in [Runtime::Reactor, Runtime::Threaded] {
            let a = Agent::start(
                AgentConfig::local("solo")
                    .protocol(fast())
                    .seed(8)
                    .runtime(runtime),
            )
            .unwrap();
            a.shutdown();
            a.shutdown(); // second call is a no-op
            assert!(a.threads.lock().is_empty());
            drop(a); // drop after shutdown is fine too

            // Dropping without shutdown joins the threads (no leak, no
            // hang).
            let b = Agent::start(
                AgentConfig::local("solo2")
                    .protocol(fast())
                    .seed(9)
                    .runtime(runtime),
            )
            .unwrap();
            let start = Instant::now();
            drop(b);
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{runtime:?} drop must join promptly"
            );
        }
    }

    /// An attacker-sized length prefix is rejected without allocating:
    /// the agent stays healthy and still converges afterwards.
    #[test]
    fn oversized_stream_frame_is_rejected_not_buffered() {
        let a = Agent::start(
            AgentConfig::local("a")
                .protocol(fast())
                .seed(31)
                .max_stream_frame(64 * 1024),
        )
        .unwrap();
        // A hand-built frame header claiming a 1 GiB body.
        let mut frame = Vec::new();
        frame.push(4u8);
        frame.extend_from_slice(&[127, 0, 0, 1]);
        frame.extend_from_slice(&9u16.to_be_bytes());
        frame.extend_from_slice(&(1u32 << 30).to_be_bytes());
        {
            use std::io::Write;
            let mut stream = std::net::TcpStream::connect(a.addr()).unwrap();
            stream.write_all(&frame).unwrap();
            // Keep the connection open briefly; the agent must drop it.
            std::thread::sleep(Duration::from_millis(100));
        }
        // The agent is still alive and functional.
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(32)).unwrap();
        b.join(&[a.addr()]);
        assert!(
            wait_for(Duration::from_secs(10), || a.num_alive() == 2
                && b.num_alive() == 2),
            "agent did not survive the oversized frame"
        );
        a.shutdown();
        b.shutdown();
    }
}
