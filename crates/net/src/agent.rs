//! A memberlist-style agent: the protocol core driven by real sockets.
//!
//! The agent is a thin I/O shell around the shared sans-I/O
//! [`Driver`] harness from `lifeguard-core` — the same harness the
//! deterministic simulator uses, so the protocol logic running here is
//! *identical* to the simulated one. [`Agent::start`] binds one UDP
//! socket and one TCP listener on the same port and spawns four
//! background threads:
//!
//! * the **datagram loop** receives UDP packets and feeds them to the
//!   driver as [`Input::Datagram`]s;
//! * the **stream loop** accepts TCP connections carrying framed
//!   push-pull / fallback-probe messages ([`Input::Stream`]);
//! * the **ticker** feeds [`Input::Tick`] at the driver's deadlines;
//! * a small fixed **stream-writer pool** drains outbound stream
//!   messages (encoding them off the protocol thread) over short-lived
//!   TCP connections, so blocking connects never happen on a protocol
//!   thread, no thread is spawned per send, and one unreachable peer
//!   cannot head-of-line-block the healthy ones.
//!
//! UDP transmits happen inline from the driver's sink with zero copies:
//! the packet payload is borrowed straight from the protocol core's
//! scratch buffer into `send_to`.
//!
//! Membership conclusions are delivered on a channel as [`AgentEvent`]s.
//!
//! Shutdown is idempotent and [`Drop`] also performs it, joining every
//! spawned thread — a dropped-without-`shutdown` agent no longer leaks
//! its driver threads.

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lifeguard_core::config::Config;
use lifeguard_core::driver::{Driver, Sink};
use lifeguard_core::event::Event;
use lifeguard_core::member::Member;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{Message, NodeAddr, NodeName};
use parking_lot::Mutex;

use crate::transport;

/// A timestamped membership event from a running agent.
#[derive(Clone, Debug)]
pub struct AgentEvent {
    /// Agent-relative time the conclusion was reached.
    pub at: Time,
    /// The conclusion.
    pub event: Event,
}

/// Configuration for [`Agent::start`].
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// Unique node name.
    pub name: String,
    /// Address to bind (UDP and TCP, same port). Use port 0 to let the
    /// OS pick.
    pub bind: SocketAddr,
    /// Protocol configuration.
    pub protocol: Config,
    /// RNG seed for the protocol core. `0` (the default) means
    /// *unseeded*: [`Agent::start`] derives a fresh per-instance seed
    /// from system entropy, so a restarted agent never reuses the
    /// delta-sync epoch of its previous life (stale peer watermarks
    /// must be detected, not honoured). Set a nonzero seed for
    /// reproducible runs — and never reuse it across restarts of the
    /// same logical node.
    pub seed: u64,
}

impl AgentConfig {
    /// Localhost agent with an OS-assigned port.
    pub fn local(name: impl Into<String>) -> Self {
        AgentConfig {
            name: name.into(),
            bind: "127.0.0.1:0".parse().expect("valid literal"),
            protocol: Config::lan().lifeguard(),
            seed: 0,
        }
    }

    /// Replaces the protocol configuration.
    pub fn protocol(mut self, protocol: Config) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// An outbound stream message for the writer pool: destination plus
/// the not-yet-encoded message (framing happens on a writer thread, so
/// a large push-pull never serialises while the driver lock is held).
type StreamJob = (SocketAddr, Message);

/// Writer threads in the stream pool. Bounds the damage of blocking
/// connects to unreachable peers (each can stall one writer for up to
/// [`transport::STREAM_TIMEOUT`]) without reverting to the seed's
/// thread-spawn-per-send.
const STREAM_WRITERS: usize = 4;

/// The agent's [`Sink`]: UDP transmits go straight to the socket
/// (borrowing the core's scratch buffer — no copy), stream messages are
/// handed to the writer pool, events go to the subscriber channel.
struct NetSink<'a> {
    udp: &'a UdpSocket,
    stream_tx: &'a Sender<StreamJob>,
    events_tx: &'a Sender<AgentEvent>,
    now: Time,
}

impl Sink for NetSink<'_> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        let _ = self.udp.send_to(payload, to.socket_addr());
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        // Hand the message over untouched: a push-pull carries the
        // whole membership table, and both its encoding and the
        // blocking connect/write belong on a writer thread, not here
        // (the driver lock is held while the sink runs).
        let _ = self.stream_tx.send((to.socket_addr(), msg));
    }

    fn event(&mut self, event: Event) {
        let _ = self.events_tx.send(AgentEvent {
            at: self.now,
            event,
        });
    }
}

struct Inner {
    driver: Mutex<Driver>,
    udp: UdpSocket,
    advertised: NodeAddr,
    start: Instant,
    shutdown: AtomicBool,
    events_tx: Sender<AgentEvent>,
    stream_tx: Sender<StreamJob>,
}

impl Inner {
    fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Feeds one input through the shared driver harness; the sink
    /// executes every effect against the real network before the driver
    /// lock is released.
    fn drive(&self, input: Input, now: Time) {
        let mut driver = self.driver.lock();
        let mut sink = NetSink {
            udp: &self.udp,
            stream_tx: &self.stream_tx,
            events_tx: &self.events_tx,
            now,
        };
        let _ = driver.handle(input, now, &mut sink);
    }
}

/// A running group member over real UDP/TCP sockets.
///
/// Dropping the agent (or calling [`Agent::shutdown`]) stops it
/// *abruptly*, which peers will detect as a failure; call
/// [`Agent::leave`] first for a graceful departure.
pub struct Agent {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    events_rx: Receiver<AgentEvent>,
}

impl Agent {
    /// Binds sockets, starts the protocol core and spawns the driver
    /// threads.
    ///
    /// # Errors
    ///
    /// Fails if the protocol configuration is invalid
    /// ([`io::ErrorKind::InvalidInput`]) or the UDP socket and TCP
    /// listener cannot be bound to the same address.
    pub fn start(config: AgentConfig) -> io::Result<Agent> {
        // Reject nonsense configs before touching the network.
        config
            .protocol
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // Bind TCP first (possibly port 0), then UDP on the same port.
        let tcp = TcpListener::bind(config.bind)?;
        let addr = tcp.local_addr()?;
        let udp = UdpSocket::bind(addr)?;
        udp.set_read_timeout(Some(Duration::from_millis(20)))?;
        tcp.set_nonblocking(true)?;

        let advertised = NodeAddr::from(addr);
        let seed = if config.seed == 0 {
            // Unseeded: derive per-instance entropy. The protocol
            // core's delta-sync epoch is a pure function of the seed,
            // so a process that restarts with the same seed would keep
            // its epoch and peers would trust watermarks from its
            // previous life.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            nanos ^ ((std::process::id() as u64) << 32) ^ (addr.port() as u64)
        } else {
            config.seed
        };
        let (events_tx, events_rx) = unbounded();
        let (stream_tx, stream_rx) = unbounded::<StreamJob>();
        let node = SwimNode::new(
            NodeName::from(config.name),
            advertised,
            config.protocol,
            seed,
        );
        let inner = Arc::new(Inner {
            driver: Mutex::new(Driver::new(node)),
            udp,
            advertised,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            events_tx,
            stream_tx,
        });
        {
            let mut driver = inner.driver.lock();
            let mut sink = NetSink {
                udp: &inner.udp,
                stream_tx: &inner.stream_tx,
                events_tx: &inner.events_tx,
                now: Time::ZERO,
            };
            driver.start(Time::ZERO, &mut sink);
        }

        let mut threads = Vec::new();
        // Datagram loop.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match inner.udp.recv_from(&mut buf) {
                        Ok((len, from)) => {
                            let now = inner.now();
                            inner.drive(
                                Input::Datagram {
                                    from: NodeAddr::from(from),
                                    payload: Bytes::copy_from_slice(&buf[..len]),
                                },
                                now,
                            );
                        }
                        Err(ref e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
            }));
        }
        // Stream loop.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match tcp.accept() {
                        Ok((mut stream, _)) => {
                            let _ = stream.set_read_timeout(Some(transport::STREAM_TIMEOUT));
                            if let Ok((from, msg)) = transport::read_frame(&mut stream) {
                                let now = inner.now();
                                inner.drive(Input::Stream { from, msg }, now);
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        // Ticker.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    let now = inner.now();
                    let due = {
                        let driver = inner.driver.lock();
                        matches!(driver.next_wake(), Some(wake) if wake <= now)
                    };
                    if due {
                        inner.drive(Input::Tick, now);
                    }
                    let next = inner.driver.lock().next_wake();
                    let sleep = next
                        .map(|w| w.saturating_since(inner.now()))
                        .unwrap_or(Duration::from_millis(20))
                        .min(Duration::from_millis(20))
                        .max(Duration::from_millis(1));
                    std::thread::sleep(sleep);
                }
            }));
        }
        // Stream-writer pool: a few threads share the outbound queue
        // (replacing the former thread-spawn-per-send). Each job is
        // encoded and sent on the writer, so a slow or unreachable
        // destination stalls at most one writer for one stream timeout
        // while the others keep draining.
        for _ in 0..STREAM_WRITERS {
            let inner = Arc::clone(&inner);
            let stream_rx = stream_rx.clone();
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    // A timeout (or disconnect) just re-checks shutdown.
                    if let Ok((to, msg)) = stream_rx.recv_timeout(Duration::from_millis(20)) {
                        let _ = transport::send_stream(to, inner.advertised, &msg);
                    }
                }
            }));
        }

        Ok(Agent {
            inner,
            threads: Mutex::new(threads),
            events_rx,
        })
    }

    /// The agent's advertised address (bound UDP/TCP port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.advertised.socket_addr()
    }

    /// The agent's node name.
    pub fn name(&self) -> NodeName {
        self.inner.driver.lock().node().name().clone()
    }

    /// Joins a cluster through the given seed addresses.
    pub fn join(&self, seeds: &[SocketAddr]) {
        let now = self.inner.now();
        let seeds: Vec<NodeAddr> = seeds.iter().map(|&s| NodeAddr::from(s)).collect();
        self.inner.drive(Input::Join { seeds }, now);
    }

    /// Gracefully leaves the group (peers observe a leave, not a
    /// failure).
    pub fn leave(&self) {
        let now = self.inner.now();
        self.inner.drive(Input::Leave, now);
    }

    /// Replaces the local node's application metadata and gossips the
    /// change.
    pub fn update_meta(&self, meta: Bytes) {
        let now = self.inner.now();
        self.inner.drive(Input::UpdateMeta { meta }, now);
    }

    /// Snapshot of the membership table.
    pub fn members(&self) -> Vec<Member> {
        self.inner.driver.lock().node().members().cloned().collect()
    }

    /// Number of members believed alive (including self).
    pub fn num_alive(&self) -> usize {
        self.inner.driver.lock().node().num_alive()
    }

    /// Current Local Health Multiplier score.
    pub fn local_health(&self) -> u32 {
        self.inner.driver.lock().node().local_health()
    }

    /// The membership event channel.
    pub fn events(&self) -> &Receiver<AgentEvent> {
        &self.events_rx
    }

    /// Stops the agent abruptly (no leave message) and joins its
    /// threads. Idempotent: the second and later calls (including the
    /// one [`Drop`] performs) are no-ops.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        let handles: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        // Threads observe the flag within one poll interval; joining
        // here guarantees a dropped agent never leaks its driver
        // threads. The bound: an idle agent drops in ~tens of
        // milliseconds, while a writer mid-send to an unreachable peer
        // can hold its join for up to one connect + write timeout
        // (2 × [`transport::STREAM_TIMEOUT`]) — a deliberate trade of
        // a bounded block for leak-freedom.
        self.shutdown();
    }
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("addr", &self.addr())
            .field("num_alive", &self.num_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A sped-up protocol config so socket tests finish in seconds.
    fn fast() -> Config {
        let mut cfg = Config::lan()
            .lifeguard()
            .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
        cfg.gossip_interval = Duration::from_millis(50);
        cfg.suspicion_alpha = 3.0;
        cfg.suspicion_beta = 2.0;
        cfg.push_pull_interval = Some(Duration::from_secs(2));
        cfg
    }

    fn wait_for(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if check() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    #[test]
    fn three_agents_converge_over_localhost() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(1)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(2)).unwrap();
        let c = Agent::start(AgentConfig::local("c").protocol(fast()).seed(3)).unwrap();
        b.join(&[a.addr()]);
        c.join(&[a.addr()]);
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.num_alive() == 3 && b.num_alive() == 3 && c.num_alive() == 3
            }),
            "agents failed to converge: a={} b={} c={}",
            a.num_alive(),
            b.num_alive(),
            c.num_alive()
        );
        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn abrupt_shutdown_is_detected_as_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(4)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(5)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2
            && b.num_alive() == 2));
        b.shutdown();
        // Suspicion min = 3 * max(1, log10(2)) * 200ms = 600ms, max 1.2s.
        assert!(
            wait_for(Duration::from_secs(20), || {
                a.events().try_iter().any(|e| {
                    matches!(&e.event, Event::MemberFailed { name, .. } if name.as_str() == "b")
                }) || a
                    .members()
                    .iter()
                    .any(|m| m.name.as_str() == "b" && !m.is_live())
            }),
            "b's failure was never detected"
        );
        a.shutdown();
    }

    #[test]
    fn graceful_leave_is_not_a_failure() {
        let a = Agent::start(AgentConfig::local("a").protocol(fast()).seed(6)).unwrap();
        let b = Agent::start(AgentConfig::local("b").protocol(fast()).seed(7)).unwrap();
        b.join(&[a.addr()]);
        assert!(wait_for(Duration::from_secs(10), || a.num_alive() == 2));
        b.leave();
        assert!(
            wait_for(Duration::from_secs(10), || {
                a.events()
                    .try_iter()
                    .any(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "b"))
            }),
            "leave event never observed"
        );
        b.shutdown();
        a.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected_before_binding() {
        let mut bad = fast();
        bad.gossip_nodes = 0;
        let err = Agent::start(AgentConfig::local("x").protocol(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_joins_threads() {
        let a = Agent::start(AgentConfig::local("solo").protocol(fast()).seed(8)).unwrap();
        a.shutdown();
        a.shutdown(); // second call is a no-op
        assert!(a.threads.lock().is_empty());
        drop(a); // drop after shutdown is fine too

        // Dropping without shutdown joins the threads (no leak, no hang).
        let b = Agent::start(AgentConfig::local("solo2").protocol(fast()).seed(9)).unwrap();
        let start = Instant::now();
        drop(b);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "drop must join promptly"
        );
    }
}
