//! Convenience for spinning up N agents on localhost (tests, demos).

use std::io;
use std::time::{Duration, Instant};

use lifeguard_core::config::Config;

use crate::agent::{Agent, AgentConfig, Runtime};

/// A set of localhost agents joined into one group, owned together.
///
/// ```no_run
/// use lifeguard_net::local_cluster::LocalCluster;
/// use lifeguard_core::config::Config;
///
/// # fn main() -> std::io::Result<()> {
/// let cluster = LocalCluster::start(3, Config::lan().lifeguard(), 7)?;
/// cluster.wait_converged(std::time::Duration::from_secs(10));
/// cluster.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct LocalCluster {
    agents: Vec<Agent>,
}

impl LocalCluster {
    /// Starts `n` agents named `node-0 … node-{n-1}` on OS-assigned
    /// localhost ports with the default runtime
    /// ([`Runtime::Reactor`]); agents 1… join through `node-0`.
    ///
    /// # Errors
    ///
    /// Fails if any agent cannot bind its sockets.
    pub fn start(n: usize, protocol: Config, seed: u64) -> io::Result<LocalCluster> {
        LocalCluster::start_with_runtime(n, protocol, seed, Runtime::default())
    }

    /// [`LocalCluster::start`] on an explicit I/O runtime.
    ///
    /// # Errors
    ///
    /// Fails if any agent cannot bind its sockets.
    pub fn start_with_runtime(
        n: usize,
        protocol: Config,
        seed: u64,
        runtime: Runtime,
    ) -> io::Result<LocalCluster> {
        assert!(n >= 1, "cluster needs at least one agent");
        let mut agents = Vec::with_capacity(n);
        for i in 0..n {
            agents.push(Agent::start(
                AgentConfig::local(format!("node-{i}"))
                    .protocol(protocol.clone())
                    .seed(seed.wrapping_add(i as u64))
                    .runtime(runtime),
            )?);
        }
        let seed_addr = agents[0].addr();
        for agent in &agents[1..] {
            agent.join(&[seed_addr]);
        }
        Ok(LocalCluster { agents })
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Whether the cluster is empty (never true after `start`).
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Access to one agent.
    pub fn agent(&self, i: usize) -> &Agent {
        &self.agents[i]
    }

    /// Blocks until every agent sees every other alive, or the deadline
    /// passes. Returns whether convergence was reached.
    pub fn wait_converged(&self, deadline: Duration) -> bool {
        let n = self.agents.len();
        let start = Instant::now();
        while start.elapsed() < deadline {
            if self.agents.iter().all(|a| a.num_alive() == n) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    /// Removes one agent from the cluster *without* a leave (peers see a
    /// failure). Panics if `i` is out of range.
    pub fn kill(&mut self, i: usize) -> String {
        let agent = self.agents.remove(i);
        let name = agent.name().as_str().to_owned();
        agent.shutdown();
        name
    }

    /// Shuts every agent down (abruptly; call
    /// [`Agent::leave`] on individuals first for graceful exits).
    pub fn shutdown(self) {
        for agent in self.agents {
            agent.shutdown();
        }
    }
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("agents", &self.agents.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_core::event::Event;

    fn fast() -> Config {
        let mut cfg = Config::lan()
            .lifeguard()
            .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
        cfg.gossip_interval = Duration::from_millis(50);
        cfg.suspicion_alpha = 3.0;
        cfg.suspicion_beta = 2.0;
        cfg
    }

    #[test]
    fn local_cluster_converges_and_detects_kill() {
        let mut cluster = LocalCluster::start(4, fast(), 99).expect("bind");
        assert_eq!(cluster.len(), 4);
        assert!(
            cluster.wait_converged(Duration::from_secs(15)),
            "no convergence"
        );
        let victim = cluster.kill(3);
        assert_eq!(victim, "node-3");
        let observer = cluster.agent(0);
        let start = Instant::now();
        let mut detected = false;
        while start.elapsed() < Duration::from_secs(20) && !detected {
            detected = observer.events().try_iter().any(|e| {
                matches!(&e.event, Event::MemberFailed { name, .. } if name.as_str() == victim)
            });
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(detected, "kill of {victim} not detected");
        cluster.shutdown();
    }
}
