//! Real-network runtime for the Lifeguard/SWIM protocol core.
//!
//! [`agent::Agent`] is a memberlist-style daemon: it drives a
//! [`lifeguard_core::node::SwimNode`] with real UDP datagrams, TCP
//! streams and OS timers. Use it to run an actual failure-detection
//! cluster:
//!
//! ```no_run
//! use lifeguard_net::agent::{Agent, AgentConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let seed = Agent::start(AgentConfig::local("seed"))?;
//! let member = Agent::start(AgentConfig::local("member"))?;
//! member.join(&[seed.addr()]);
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod local_cluster;
pub(crate) mod reactor;
pub mod transport;

pub use agent::{Agent, AgentConfig, AgentConfigError, AgentEvent, IoBatchConfig, IoStats, Runtime};
pub use local_cluster::LocalCluster;
