//! Hand-rolled binary wire codec.
//!
//! The format is deliberately simple and deterministic: a one-byte tag
//! followed by fixed-order fields. Integers are big-endian; strings and
//! byte blobs are length-prefixed with `u16`; addresses are encoded as an
//! address-family byte (4 or 6), the raw IP octets, and a `u16` port.
//!
//! The encoded size of a message is stable, which the gossip queue relies
//! on when packing compound packets against the MTU budget.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use crate::error::DecodeError;
use crate::messages::{
    Ack, Alive, Dead, IndirectPing, Message, Nack, Ping, PushNodeState, PushPull, PushPullDelta,
    Suspect,
};
use crate::types::{Incarnation, MemberState, NodeAddr, NodeName, SeqNo};

/// Wire tag for each message type. `COMPOUND_TAG` is reserved for packets
/// carrying multiple messages (see [`crate::compound`]).
pub(crate) const TAG_PING: u8 = 0;
pub(crate) const TAG_INDIRECT_PING: u8 = 1;
pub(crate) const TAG_ACK: u8 = 2;
pub(crate) const TAG_NACK: u8 = 3;
pub(crate) const TAG_SUSPECT: u8 = 4;
pub(crate) const TAG_ALIVE: u8 = 5;
pub(crate) const TAG_DEAD: u8 = 6;
pub(crate) const TAG_PUSH_PULL: u8 = 7;
pub(crate) const TAG_PUSH_PULL_DELTA: u8 = 8;
/// Tag marking a compound packet.
pub const COMPOUND_TAG: u8 = 255;

/// Encodes a single message into a fresh buffer.
///
/// Single-pass: the message is traversed exactly once (by
/// `encode_into`); the initial reservation comes from the O(1)
/// `size_hint` instead of a second full walk through
/// [`encoded_len`]. The produced length still equals `encoded_len`:
///
/// ```
/// use lifeguard_proto::{codec, Message, Nack, SeqNo};
/// let bytes = codec::encode_message(&Message::Nack(Nack { seq: SeqNo(7) }));
/// assert_eq!(bytes.len(), codec::encoded_len(&Message::Nack(Nack { seq: SeqNo(7) })));
/// ```
pub fn encode_message(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(size_hint(msg));
    encode_into(msg, &mut buf);
    buf.freeze()
}

/// Appends the encoding of `msg` to a caller-owned buffer, returning the
/// number of bytes written. Lets hot paths (packet assembly, gossip
/// pre-encoding) reuse one allocation across messages.
pub fn encode_message_into(msg: &Message, buf: &mut BytesMut) -> usize {
    let start = buf.len();
    encode_into(msg, buf);
    buf.len() - start
}

/// Appends the encoding of `msg` to `buf`.
pub fn encode_into(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Ping(p) => {
            buf.put_u8(TAG_PING);
            buf.put_u32(p.seq.0);
            put_name(buf, &p.target);
            put_name(buf, &p.source);
            put_addr(buf, p.source_addr);
        }
        Message::IndirectPing(p) => {
            buf.put_u8(TAG_INDIRECT_PING);
            buf.put_u32(p.seq.0);
            put_name(buf, &p.target);
            put_addr(buf, p.target_addr);
            buf.put_u8(u8::from(p.nack));
            put_name(buf, &p.source);
            put_addr(buf, p.source_addr);
        }
        Message::Ack(a) => {
            buf.put_u8(TAG_ACK);
            buf.put_u32(a.seq.0);
        }
        Message::Nack(n) => {
            buf.put_u8(TAG_NACK);
            buf.put_u32(n.seq.0);
        }
        Message::Suspect(s) => {
            buf.put_u8(TAG_SUSPECT);
            buf.put_u64(s.incarnation.0);
            put_name(buf, &s.node);
            put_name(buf, &s.from);
        }
        Message::Alive(a) => {
            buf.put_u8(TAG_ALIVE);
            buf.put_u64(a.incarnation.0);
            put_name(buf, &a.node);
            put_addr(buf, a.addr);
            put_blob(buf, &a.meta);
        }
        Message::Dead(d) => {
            buf.put_u8(TAG_DEAD);
            buf.put_u64(d.incarnation.0);
            put_name(buf, &d.node);
            put_name(buf, &d.from);
        }
        Message::PushPull(pp) => {
            buf.put_u8(TAG_PUSH_PULL);
            let flags = u8::from(pp.join) | (u8::from(pp.reply) << 1);
            buf.put_u8(flags);
            put_states(buf, &pp.states);
        }
        Message::PushPullDelta(d) => {
            buf.put_u8(TAG_PUSH_PULL_DELTA);
            buf.put_u8(u8::from(d.reply));
            put_name(buf, &d.from);
            buf.put_u64(d.epoch);
            buf.put_u64(d.since_epoch);
            buf.put_u64(d.since);
            buf.put_u64(d.seq);
            put_states(buf, &d.entries);
        }
    }
}

/// O(1) capacity estimate for one message: exact for every fixed-shape
/// message, a generous per-state guess for `push-pull` (whose exact size
/// would require walking all states — the very second traversal
/// [`encode_message`] avoids).
fn size_hint(msg: &Message) -> usize {
    match msg {
        Message::PushPull(pp) => 1 + 1 + 4 + pp.states.len() * 64,
        Message::PushPullDelta(d) => 1 + 1 + name_len(&d.from) + 32 + 4 + d.entries.len() * 64,
        other => encoded_len(other),
    }
}

/// Exact number of bytes [`encode_into`] will append for `msg`.
///
/// O(1) for all message types except `push-pull` (O(states)); used by
/// telemetry and the length-invariant tests.
pub fn encoded_len(msg: &Message) -> usize {
    match msg {
        Message::Ping(p) => 1 + 4 + name_len(&p.target) + name_len(&p.source) + addr_len(p.source_addr),
        Message::IndirectPing(p) => {
            1 + 4
                + name_len(&p.target)
                + addr_len(p.target_addr)
                + 1
                + name_len(&p.source)
                + addr_len(p.source_addr)
        }
        Message::Ack(_) | Message::Nack(_) => 1 + 4,
        Message::Suspect(s) => 1 + 8 + name_len(&s.node) + name_len(&s.from),
        Message::Alive(a) => 1 + 8 + name_len(&a.node) + addr_len(a.addr) + 2 + a.meta.len(),
        Message::Dead(d) => 1 + 8 + name_len(&d.node) + name_len(&d.from),
        Message::PushPull(pp) => 1 + 1 + states_len(&pp.states),
        Message::PushPullDelta(d) => 1 + 1 + name_len(&d.from) + 32 + states_len(&d.entries),
    }
}

fn states_len(states: &[PushNodeState]) -> usize {
    4 + states
        .iter()
        .map(|st| name_len(&st.name) + addr_len(st.addr) + 8 + 1 + 2 + st.meta.len())
        .sum::<usize>()
}

fn put_states(buf: &mut BytesMut, states: &[PushNodeState]) {
    debug_assert!(states.len() <= u32::MAX as usize, "state list too long");
    // lint: allow(lossy_cast) — membership lists are nowhere near 2^32 entries
    buf.put_u32(states.len() as u32);
    for st in states {
        put_name(buf, &st.name);
        put_addr(buf, st.addr);
        buf.put_u64(st.incarnation.0);
        buf.put_u8(st.state.as_u8());
        put_blob(buf, &st.meta);
    }
}

/// Decodes exactly one message, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, malformed, or
/// longer than one message.
pub fn decode_message(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut r = Reader::new(bytes);
    let msg = decode_from(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

/// Like [`decode_message`], but blob fields (`alive`/push-pull metadata)
/// are zero-copy [`Bytes::slice`]s of `bytes` instead of fresh
/// allocations.
///
/// # Errors
///
/// Same as [`decode_message`].
pub fn decode_message_shared(bytes: &Bytes) -> Result<Message, DecodeError> {
    let mut r = Reader::shared(bytes);
    let msg = decode_from(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

/// Decodes one message from the reader, leaving any following bytes.
pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Message, DecodeError> {
    let tag = r.get_u8()?;
    match tag {
        TAG_PING => Ok(Message::Ping(Ping {
            seq: SeqNo(r.get_u32()?),
            target: r.get_name()?,
            source: r.get_name()?,
            source_addr: r.get_addr()?,
        })),
        TAG_INDIRECT_PING => Ok(Message::IndirectPing(IndirectPing {
            seq: SeqNo(r.get_u32()?),
            target: r.get_name()?,
            target_addr: r.get_addr()?,
            nack: r.get_u8()? != 0,
            source: r.get_name()?,
            source_addr: r.get_addr()?,
        })),
        TAG_ACK => Ok(Message::Ack(Ack {
            seq: SeqNo(r.get_u32()?),
        })),
        TAG_NACK => Ok(Message::Nack(Nack {
            seq: SeqNo(r.get_u32()?),
        })),
        TAG_SUSPECT => Ok(Message::Suspect(Suspect {
            incarnation: Incarnation(r.get_u64()?),
            node: r.get_name()?,
            from: r.get_name()?,
        })),
        TAG_ALIVE => Ok(Message::Alive(Alive {
            incarnation: Incarnation(r.get_u64()?),
            node: r.get_name()?,
            addr: r.get_addr()?,
            meta: r.get_blob()?,
        })),
        TAG_DEAD => Ok(Message::Dead(Dead {
            incarnation: Incarnation(r.get_u64()?),
            node: r.get_name()?,
            from: r.get_name()?,
        })),
        TAG_PUSH_PULL => {
            let flags = r.get_u8()?;
            let states = get_states(r)?;
            Ok(Message::PushPull(PushPull {
                join: flags & 1 != 0,
                reply: flags & 2 != 0,
                states,
            }))
        }
        TAG_PUSH_PULL_DELTA => {
            let reply = r.get_u8()? != 0;
            Ok(Message::PushPullDelta(PushPullDelta {
                reply,
                from: r.get_name()?,
                epoch: r.get_u64()?,
                since_epoch: r.get_u64()?,
                since: r.get_u64()?,
                seq: r.get_u64()?,
                entries: get_states(r)?,
            }))
        }
        other => Err(DecodeError::UnknownTag(other)),
    }
}

fn get_states(r: &mut Reader<'_>) -> Result<Vec<PushNodeState>, DecodeError> {
    let count = r.get_u32()? as usize;
    let mut states = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        states.push(PushNodeState {
            name: r.get_name()?,
            addr: r.get_addr()?,
            incarnation: Incarnation(r.get_u64()?),
            state: {
                let b = r.get_u8()?;
                MemberState::from_u8(b).ok_or(DecodeError::UnknownState(b))?
            },
            meta: r.get_blob()?,
        });
    }
    Ok(states)
}

fn name_len(n: &NodeName) -> usize {
    2 + n.len()
}

fn addr_len(a: NodeAddr) -> usize {
    match a.ip() {
        IpAddr::V4(_) => 1 + 4 + 2,
        IpAddr::V6(_) => 1 + 16 + 2,
    }
}

fn put_name(buf: &mut BytesMut, n: &NodeName) {
    debug_assert!(n.len() <= u16::MAX as usize, "node name too long");
    // lint: allow(lossy_cast) — names are length-checked at construction (NodeName::new)
    buf.put_u16(n.len() as u16);
    buf.put_slice(n.as_str().as_bytes());
}

fn put_blob(buf: &mut BytesMut, b: &[u8]) {
    debug_assert!(b.len() <= u16::MAX as usize, "metadata blob too long");
    // lint: allow(lossy_cast) — blobs are budget-checked before encode
    buf.put_u16(b.len() as u16);
    buf.put_slice(b);
}

fn put_addr(buf: &mut BytesMut, a: NodeAddr) {
    match a.ip() {
        IpAddr::V4(ip) => {
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            buf.put_u8(6);
            buf.put_slice(&ip.octets());
        }
    }
    buf.put_u16(a.port());
}

/// Cursor over a byte slice used by the decoder.
///
/// When constructed with [`Reader::shared`], blob fields are cut as
/// zero-copy slices of the backing [`Bytes`] instead of being copied.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    shared: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            shared: None,
        }
    }

    pub(crate) fn shared(bytes: &'a Bytes) -> Self {
        Reader {
            buf: bytes,
            pos: 0,
            shared: Some(bytes),
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    // lint: allow(panic_path) — indexes a slice `take(1)` just returned, which is exactly 1 byte long
    pub(crate) fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let s = self.take(1)?;
        Ok(s[0])
    }

    // lint: allow(panic_path) — indexes a slice `take(2)` just returned, which is exactly 2 bytes long
    pub(crate) fn get_u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    // lint: allow(panic_path) — indexes a slice `take(4)` just returned, which is exactly 4 bytes long
    fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    // lint: allow(panic_path) — copies from a slice `take(8)` just returned into a same-length array
    fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }

    // lint: allow(panic_path) — the slice range is validated by the `remaining() < n` early return on the line above it
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_name(&mut self) -> Result<NodeName, DecodeError> {
        let len = self.get_u16()? as usize;
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|_| DecodeError::InvalidUtf8)?;
        Ok(NodeName::from(s))
    }

    fn get_blob(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_u16()? as usize;
        let start = self.pos;
        let raw = self.take(len)?;
        Ok(match self.shared {
            Some(bytes) => bytes.slice(start..start + len),
            None => Bytes::copy_from_slice(raw),
        })
    }

    // lint: allow(panic_path) — indexes/copies slices `take(4)`/`take(16)` just returned, with matching lengths
    fn get_addr(&mut self) -> Result<NodeAddr, DecodeError> {
        let family = self.get_u8()?;
        let ip = match family {
            4 => {
                let o = self.take(4)?;
                IpAddr::V4(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            6 => {
                let o = self.take(16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                IpAddr::V6(Ipv6Addr::from(b))
            }
            other => return Err(DecodeError::UnknownAddrFamily(other)),
        };
        let port = self.get_u16()?;
        Ok(NodeAddr::from(SocketAddr::new(ip, port)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        let a = NodeAddr::new([10, 0, 0, 1], 7946);
        let b = NodeAddr::new([10, 0, 0, 2], 7946);
        vec![
            Message::Ping(Ping {
                seq: SeqNo(1),
                target: "b".into(),
                source: "a".into(),
                source_addr: a,
            }),
            Message::IndirectPing(IndirectPing {
                seq: SeqNo(2),
                target: "c".into(),
                target_addr: b,
                nack: true,
                source: "a".into(),
                source_addr: a,
            }),
            Message::Ack(Ack { seq: SeqNo(3) }),
            Message::Nack(Nack { seq: SeqNo(4) }),
            Message::Suspect(Suspect {
                incarnation: Incarnation(5),
                node: "b".into(),
                from: "a".into(),
            }),
            Message::Alive(Alive {
                incarnation: Incarnation(6),
                node: "b".into(),
                addr: b,
                meta: Bytes::from_static(b"meta"),
            }),
            Message::Dead(Dead {
                incarnation: Incarnation(7),
                node: "b".into(),
                from: "a".into(),
            }),
            Message::PushPull(PushPull {
                join: true,
                reply: false,
                states: vec![PushNodeState {
                    name: "a".into(),
                    addr: a,
                    incarnation: Incarnation(1),
                    state: MemberState::Alive,
                    meta: Bytes::new(),
                }],
            }),
            Message::PushPullDelta(PushPullDelta {
                from: "a".into(),
                epoch: 0xDEAD_BEEF,
                since_epoch: 0xFEED_FACE,
                since: 41,
                seq: 99,
                reply: true,
                entries: vec![PushNodeState {
                    name: "b".into(),
                    addr: b,
                    incarnation: Incarnation(7),
                    state: MemberState::Suspect,
                    meta: Bytes::from_static(b"m"),
                }],
            }),
        ]
    }

    #[test]
    fn roundtrip_all_message_types() {
        for msg in sample_messages() {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).expect("decode");
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for msg in sample_messages() {
            assert_eq!(encode_message(&msg).len(), encoded_len(&msg), "{msg:?}");
        }
    }

    #[test]
    fn ipv6_addresses_roundtrip() {
        let addr = NodeAddr::from("[2001:db8::1]:7946".parse::<SocketAddr>().unwrap());
        let msg = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "v6".into(),
            addr,
            meta: Bytes::new(),
        });
        assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
        assert_eq!(encode_message(&msg).len(), encoded_len(&msg));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode_message(&Message::Ack(Ack { seq: SeqNo(9) }));
        for cut in 0..bytes.len() {
            assert!(decode_message(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_message(&Message::Ack(Ack { seq: SeqNo(9) })).to_vec();
        bytes.push(0);
        assert_eq!(
            decode_message(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_message(&[42]), Err(DecodeError::UnknownTag(42)));
    }

    #[test]
    fn invalid_utf8_name_is_rejected() {
        // Hand-craft a suspect message with a bad name.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_SUSPECT);
        buf.put_u64(0);
        buf.put_u16(2);
        buf.put_slice(&[0xff, 0xfe]);
        buf.put_u16(0);
        assert_eq!(decode_message(&buf), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn unknown_state_in_push_pull_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PUSH_PULL);
        buf.put_u8(0);
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_slice(b"a");
        buf.put_u8(4);
        buf.put_slice(&[10, 0, 0, 1]);
        buf.put_u16(1);
        buf.put_u64(0);
        buf.put_u8(99); // invalid state
        buf.put_u16(0);
        assert_eq!(decode_message(&buf), Err(DecodeError::UnknownState(99)));
    }

    /// The delta codec round-trip gated by CI: every field of
    /// `PushPullDelta` (watermarks, epochs, reply flag, entry list)
    /// survives encode → decode, with and without entries, and the
    /// exact-length invariant the compound packer relies on holds.
    #[test]
    fn push_pull_delta_roundtrip() {
        let entries: Vec<PushNodeState> = (0..5)
            .map(|i| PushNodeState {
                name: format!("node-{i}").into(),
                addr: NodeAddr::new([10, 0, 0, i as u8], 7946),
                incarnation: Incarnation(i),
                state: MemberState::from_u8((i % 4) as u8).unwrap(),
                meta: Bytes::from(vec![i as u8; i as usize]),
            })
            .collect();
        for reply in [false, true] {
            for entries in [vec![], entries.clone()] {
                let msg = Message::PushPullDelta(PushPullDelta {
                    from: "sender".into(),
                    epoch: u64::MAX,
                    since_epoch: 1,
                    since: u64::MAX - 1,
                    seq: 123_456_789,
                    reply,
                    entries,
                });
                let bytes = encode_message(&msg);
                assert_eq!(bytes.len(), encoded_len(&msg));
                assert_eq!(decode_message(&bytes).unwrap(), msg);
            }
        }
    }

    #[test]
    fn empty_push_pull_roundtrips() {
        let msg = Message::PushPull(PushPull {
            join: false,
            reply: true,
            states: vec![],
        });
        assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
    }
}
