//! Compound packets: several messages in one datagram.
//!
//! SWIM piggybacks gossip on failure-detector traffic; memberlist realises
//! this by packing a `ping`/`ack` together with queued gossip messages into
//! a single UDP datagram. A compound packet is:
//!
//! ```text
//! [COMPOUND_TAG u8][count u8]([len u16] * count)([payload bytes] * count)
//! ```
//!
//! A packet containing exactly one message is sent bare (no compound
//! framing), which is what memberlist does and what keeps the byte counts
//! of Table VI honest.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{self, COMPOUND_TAG};
use crate::error::DecodeError;
use crate::messages::Message;

/// Maximum number of parts in one compound packet (count is a `u8`).
pub const MAX_COMPOUND_PARTS: usize = 255;

/// Incrementally builds a datagram under a byte budget.
///
/// Messages are added pre-encoded (the gossip queue stores encoded
/// broadcasts); [`CompoundBuilder::try_add`] refuses additions that would
/// exceed the budget so callers can stop filling.
///
/// ```
/// use lifeguard_proto::{compound::CompoundBuilder, codec, Message, Ack, SeqNo};
///
/// let mut b = CompoundBuilder::new(1400);
/// let ack = codec::encode_message(&Message::Ack(Ack { seq: SeqNo(1) }));
/// assert!(b.try_add(ack));
/// let packet = b.finish().expect("one message");
/// let msgs = lifeguard_proto::compound::decode_packet(&packet).unwrap();
/// assert_eq!(msgs.len(), 1);
/// ```
#[derive(Debug)]
pub struct CompoundBuilder {
    budget: usize,
    parts: Vec<Bytes>,
    payload_len: usize,
}

impl CompoundBuilder {
    /// Creates a builder that will keep the final packet within `budget`
    /// bytes (unless a single first message alone exceeds it, which is
    /// always permitted so oversized messages can still be sent).
    pub fn new(budget: usize) -> Self {
        CompoundBuilder {
            budget,
            parts: Vec::new(),
            payload_len: 0,
        }
    }

    /// Bytes the packet would occupy if finished now.
    pub fn current_len(&self) -> usize {
        match self.parts.len() {
            0 => 0,
            1 => self.parts[0].len(),
            n => 2 + 2 * n + self.payload_len,
        }
    }

    /// Number of messages added so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether no messages have been added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Remaining budget for one more part, accounting for framing overhead.
    ///
    /// Returns `usize::MAX` for the first message (a lone oversized message
    /// is always allowed through).
    pub fn remaining(&self) -> usize {
        if self.parts.is_empty() {
            return usize::MAX;
        }
        // Adding part n+1 switches (or keeps) compound framing:
        // header 2 bytes + 2 bytes length prefix per part.
        let framed_now = 2 + 2 * (self.parts.len() + 1) + self.payload_len;
        self.budget.saturating_sub(framed_now)
    }

    /// Adds a pre-encoded message if it fits in the remaining budget and
    /// the part-count limit. Returns whether it was added.
    pub fn try_add(&mut self, encoded: Bytes) -> bool {
        if self.parts.len() >= MAX_COMPOUND_PARTS {
            return false;
        }
        if !self.parts.is_empty() && encoded.len() > self.remaining() {
            return false;
        }
        self.payload_len += encoded.len();
        self.parts.push(encoded);
        true
    }

    /// Finishes the packet: `None` if empty, a bare message if one part,
    /// a compound frame otherwise.
    pub fn finish(self) -> Option<Bytes> {
        match self.parts.len() {
            0 => None,
            1 => Some(self.parts.into_iter().next().expect("one part")),
            n => {
                let mut buf = BytesMut::with_capacity(2 + 2 * n + self.payload_len);
                buf.put_u8(COMPOUND_TAG);
                buf.put_u8(n as u8);
                for p in &self.parts {
                    debug_assert!(p.len() <= u16::MAX as usize);
                    buf.put_u16(p.len() as u16);
                }
                for p in &self.parts {
                    buf.put_slice(p);
                }
                Some(buf.freeze())
            }
        }
    }
}

/// Packs pre-encoded messages into as few packets as possible, each within
/// `budget` bytes. Never drops a message; order is preserved.
pub fn pack_all(encoded: impl IntoIterator<Item = Bytes>, budget: usize) -> Vec<Bytes> {
    let mut packets = Vec::new();
    let mut builder = CompoundBuilder::new(budget);
    for msg in encoded {
        if !builder.try_add(msg.clone()) {
            if let Some(p) = std::mem::replace(&mut builder, CompoundBuilder::new(budget)).finish()
            {
                packets.push(p);
            }
            let added = builder.try_add(msg);
            debug_assert!(added, "first message always fits");
        }
    }
    if let Some(p) = builder.finish() {
        packets.push(p);
    }
    packets
}

/// Decodes a datagram into its constituent messages, transparently
/// unwrapping compound framing.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the packet is malformed; a compound packet
/// whose declared part lengths overrun the payload yields
/// [`DecodeError::TruncatedCompound`].
pub fn decode_packet(bytes: &[u8]) -> Result<Vec<Message>, DecodeError> {
    if bytes.first() == Some(&COMPOUND_TAG) {
        let mut r = codec::Reader::new(&bytes[1..]);
        let count = r.get_u8()? as usize;
        let mut lens = Vec::with_capacity(count);
        for _ in 0..count {
            lens.push(r.get_u16()? as usize);
        }
        let mut msgs = Vec::with_capacity(count);
        for len in lens {
            let part = r.take(len).map_err(|_| DecodeError::TruncatedCompound)?;
            msgs.push(codec::decode_message(part)?);
        }
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(msgs)
    } else {
        Ok(vec![codec::decode_message(bytes)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Ack, Alive, Suspect};
    use crate::types::{Incarnation, NodeAddr, SeqNo};

    fn enc(m: &Message) -> Bytes {
        codec::encode_message(m)
    }

    fn ack(seq: u32) -> Message {
        Message::Ack(Ack { seq: SeqNo(seq) })
    }

    #[test]
    fn single_message_is_sent_bare() {
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&ack(1))));
        let packet = b.finish().unwrap();
        assert_ne!(packet[0], COMPOUND_TAG);
        assert_eq!(decode_packet(&packet).unwrap(), vec![ack(1)]);
    }

    #[test]
    fn empty_builder_finishes_to_none() {
        assert!(CompoundBuilder::new(100).finish().is_none());
        assert!(CompoundBuilder::new(100).is_empty());
    }

    #[test]
    fn multiple_messages_roundtrip_in_order() {
        let msgs: Vec<Message> = (0..10).map(ack).collect();
        let mut b = CompoundBuilder::new(1400);
        for m in &msgs {
            assert!(b.try_add(enc(m)));
        }
        assert_eq!(b.len(), 10);
        let packet = b.finish().unwrap();
        assert_eq!(packet[0], COMPOUND_TAG);
        assert_eq!(decode_packet(&packet).unwrap(), msgs);
    }

    #[test]
    fn budget_is_respected_after_first_message() {
        let big = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "x".into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::from(vec![0u8; 300]),
        });
        let mut b = CompoundBuilder::new(400);
        assert!(b.try_add(enc(&big)));
        // Second large message exceeds the 400-byte budget.
        assert!(!b.try_add(enc(&big)));
        let packet = b.finish().unwrap();
        assert!(packet.len() <= 400);
    }

    #[test]
    fn oversized_first_message_is_allowed() {
        let big = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "x".into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::from(vec![0u8; 2000]),
        });
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&big)));
        assert!(b.finish().unwrap().len() > 1400);
    }

    #[test]
    fn current_len_tracks_framing() {
        let mut b = CompoundBuilder::new(1400);
        assert_eq!(b.current_len(), 0);
        let a = enc(&ack(1));
        b.try_add(a.clone());
        assert_eq!(b.current_len(), a.len());
        b.try_add(a.clone());
        assert_eq!(b.current_len(), 2 + 4 + 2 * a.len());
        let packet = b.finish().unwrap();
        assert_eq!(packet.len(), 2 + 4 + 2 * a.len());
    }

    #[test]
    fn part_count_limit_enforced() {
        let mut b = CompoundBuilder::new(usize::MAX);
        for i in 0..MAX_COMPOUND_PARTS {
            assert!(b.try_add(enc(&ack(i as u32))));
        }
        assert!(!b.try_add(enc(&ack(9999))));
    }

    #[test]
    fn pack_all_preserves_every_message() {
        let msgs: Vec<Message> = (0..100)
            .map(|i| {
                Message::Suspect(Suspect {
                    incarnation: Incarnation(i),
                    node: format!("node-{i}").into(),
                    from: "me".into(),
                })
            })
            .collect();
        let packets = pack_all(msgs.iter().map(enc), 128);
        assert!(packets.len() > 1);
        let mut decoded = Vec::new();
        for p in &packets {
            assert!(p.len() <= 128, "packet over budget: {}", p.len());
            decoded.extend(decode_packet(p).unwrap());
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn truncated_compound_is_rejected() {
        let mut b = CompoundBuilder::new(1400);
        b.try_add(enc(&ack(1)));
        b.try_add(enc(&ack(2)));
        let packet = b.finish().unwrap();
        assert!(matches!(
            decode_packet(&packet[..packet.len() - 1]),
            Err(DecodeError::TruncatedCompound) | Err(DecodeError::UnexpectedEof)
        ));
    }
}
