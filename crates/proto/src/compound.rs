//! Compound packets: several messages in one datagram.
//!
//! SWIM piggybacks gossip on failure-detector traffic; memberlist realises
//! this by packing a `ping`/`ack` together with queued gossip messages into
//! a single UDP datagram. A compound packet is:
//!
//! ```text
//! [COMPOUND_TAG u8][count u8]([len u16] * count)([payload bytes] * count)
//! ```
//!
//! A packet containing exactly one message is sent bare (no compound
//! framing), which is what memberlist does and what keeps the byte counts
//! of Table VI honest.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{self, COMPOUND_TAG};
use crate::error::DecodeError;
use crate::messages::Message;

/// Maximum number of parts in one compound packet (count is a `u8`).
pub const MAX_COMPOUND_PARTS: usize = 255;

/// Incrementally builds a datagram under a byte budget.
///
/// Parts are appended into one contiguous payload buffer: pre-encoded
/// gossip bytes are copied in ([`CompoundBuilder::try_add`]), and fresh
/// messages are encoded *directly* into the buffer
/// ([`CompoundBuilder::try_add_msg`]) with no intermediate allocation.
/// Additions that would exceed the budget are refused so callers can
/// stop filling.
///
/// ```
/// use lifeguard_proto::{compound::CompoundBuilder, codec, Message, Ack, SeqNo};
///
/// let mut b = CompoundBuilder::new(1400);
/// let ack = codec::encode_message(&Message::Ack(Ack { seq: SeqNo(1) }));
/// assert!(b.try_add(ack));
/// assert!(b.try_add_msg(&Message::Ack(Ack { seq: SeqNo(2) })));
/// let packet = b.finish().expect("two messages");
/// let msgs = lifeguard_proto::compound::decode_packet(&packet).unwrap();
/// assert_eq!(msgs.len(), 2);
/// ```
#[derive(Debug)]
pub struct CompoundBuilder {
    budget: usize,
    /// Concatenated encoded parts.
    payload: BytesMut,
    /// Length of each part within `payload`.
    lens: Vec<u16>,
}

impl CompoundBuilder {
    /// Creates a builder that will keep the final packet within `budget`
    /// bytes (unless a single first message alone exceeds it, which is
    /// always permitted so oversized messages can still be sent).
    pub fn new(budget: usize) -> Self {
        CompoundBuilder {
            budget,
            payload: BytesMut::new(),
            lens: Vec::new(),
        }
    }

    /// Bytes the packet would occupy if finished now.
    pub fn current_len(&self) -> usize {
        match self.lens.len() {
            0 => 0,
            1 => self.payload.len(),
            n => 2 + 2 * n + self.payload.len(),
        }
    }

    /// Number of messages added so far.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// Whether no messages have been added.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Remaining budget for one more part, accounting for framing overhead.
    ///
    /// Returns `usize::MAX` for the first message (a lone oversized message
    /// is always allowed through).
    pub fn remaining(&self) -> usize {
        if self.lens.is_empty() {
            return usize::MAX;
        }
        // Adding part n+1 switches (or keeps) compound framing:
        // header 2 bytes + 2 bytes length prefix per part.
        let framed_now = 2 + 2 * (self.lens.len() + 1) + self.payload.len();
        self.budget.saturating_sub(framed_now)
    }

    /// Adds a pre-encoded message if it fits in the remaining budget and
    /// the part-count limit. Returns whether it was added.
    pub fn try_add(&mut self, encoded: Bytes) -> bool {
        self.try_add_bytes(&encoded)
    }

    /// [`CompoundBuilder::try_add`] without taking ownership.
    pub fn try_add_bytes(&mut self, encoded: &[u8]) -> bool {
        if self.lens.len() >= MAX_COMPOUND_PARTS {
            return false;
        }
        // The per-part length word is a u16: a longer part cannot be
        // framed and must be refused, not silently truncated to
        // `len % 65536` (which would corrupt every following part).
        // This bounds even the oversized-first-message allowance.
        if encoded.len() > u16::MAX as usize {
            return false;
        }
        if !self.lens.is_empty() && encoded.len() > self.remaining() {
            return false;
        }
        self.payload.extend_from_slice(encoded);
        // lint: allow(lossy_cast) — bounded by the u16::MAX check above
        self.lens.push(encoded.len() as u16);
        true
    }

    /// Encodes `msg` straight into the payload buffer if it fits —
    /// the allocation-free path for primary (`ping`/`ack`/…) messages.
    /// Returns whether it was added.
    pub fn try_add_msg(&mut self, msg: &Message) -> bool {
        if self.lens.len() >= MAX_COMPOUND_PARTS {
            return false;
        }
        let budget = self.remaining();
        let start = self.payload.len();
        let written = codec::encode_message_into(msg, &mut self.payload);
        // Same u16 length-word bound as `try_add_bytes`: an unframeable
        // part is rolled back, never length-truncated.
        if written > u16::MAX as usize || (!self.lens.is_empty() && written > budget) {
            self.payload.truncate(start);
            return false;
        }
        // lint: allow(lossy_cast) — bounded by the u16::MAX rollback check above
        self.lens.push(written as u16);
        true
    }

    /// Resets the builder for a new packet under a (possibly different)
    /// budget, keeping the payload buffer's capacity. Together with
    /// [`CompoundBuilder::finish_into`] this lets one long-lived builder
    /// assemble every packet a node sends without per-packet allocation.
    pub fn reset(&mut self, budget: usize) {
        self.budget = budget;
        self.payload.clear();
        self.lens.clear();
    }

    /// Finishes the packet into `out`, appending the encoded bytes and
    /// returning their range within `out` — the allocation-free
    /// counterpart of [`CompoundBuilder::finish`] for callers that own a
    /// reusable scratch buffer. The builder is left empty (as if
    /// [`CompoundBuilder::reset`] had been called with the same budget),
    /// ready for the next packet.
    ///
    /// Returns `None` (and appends nothing) if no message was added.
    pub fn finish_into(&mut self, out: &mut Vec<u8>) -> Option<std::ops::Range<usize>> {
        let start = out.len();
        match self.lens.len() {
            0 => None,
            1 => {
                out.extend_from_slice(&self.payload);
                self.payload.clear();
                self.lens.clear();
                Some(start..out.len())
            }
            n => {
                out.push(COMPOUND_TAG);
                // lint: allow(lossy_cast) — n ≤ MAX_COMPOUND_PARTS (255), enforced at add time
                out.push(n as u8);
                for &len in &self.lens {
                    out.extend_from_slice(&len.to_be_bytes());
                }
                out.extend_from_slice(&self.payload);
                self.payload.clear();
                self.lens.clear();
                Some(start..out.len())
            }
        }
    }

    /// Finishes the packet into `out` once and emits the *same* byte
    /// range for every destination in `dests` — the fan-out counterpart
    /// of [`CompoundBuilder::finish_into`] for batched packet I/O: one
    /// encode pass produces N `(destination, range)` batch entries all
    /// referencing a single arena slice, which a gather-send (e.g.
    /// `sendmmsg(2)`) can transmit without ever duplicating the
    /// payload.
    ///
    /// Returns the shared range, or `None` (appending and emitting
    /// nothing) if no message was added or `dests` is empty. When a
    /// packet was produced, the builder is left reset exactly as after
    /// [`CompoundBuilder::finish_into`].
    pub fn finish_into_fanout<D: Copy>(
        &mut self,
        out: &mut Vec<u8>,
        dests: &[D],
        mut emit: impl FnMut(D, std::ops::Range<usize>),
    ) -> Option<std::ops::Range<usize>> {
        if dests.is_empty() {
            return None;
        }
        let range = self.finish_into(out)?;
        for &dest in dests {
            emit(dest, range.clone());
        }
        Some(range)
    }

    /// Finishes the packet: `None` if empty, a bare message if one part,
    /// a compound frame otherwise.
    pub fn finish(self) -> Option<Bytes> {
        match self.lens.len() {
            0 => None,
            1 => Some(self.payload.freeze()),
            n => {
                let mut buf = BytesMut::with_capacity(2 + 2 * n + self.payload.len());
                buf.put_u8(COMPOUND_TAG);
                // lint: allow(lossy_cast) — n ≤ MAX_COMPOUND_PARTS (255), enforced at add time
                buf.put_u8(n as u8);
                for &len in &self.lens {
                    buf.put_u16(len);
                }
                buf.put_slice(&self.payload);
                Some(buf.freeze())
            }
        }
    }
}

/// Packs pre-encoded messages into as few packets as possible, each within
/// `budget` bytes. Never drops a framable message; order is preserved.
/// Messages longer than `u16::MAX` bytes cannot be represented by the
/// compound length word and are skipped (debug builds assert).
pub fn pack_all(encoded: impl IntoIterator<Item = Bytes>, budget: usize) -> Vec<Bytes> {
    let mut packets = Vec::new();
    let mut builder = CompoundBuilder::new(budget);
    for msg in encoded {
        if !builder.try_add_bytes(&msg) {
            if let Some(p) = std::mem::replace(&mut builder, CompoundBuilder::new(budget)).finish()
            {
                packets.push(p);
            }
            let added = builder.try_add_bytes(&msg);
            debug_assert!(added, "first framable message always fits");
        }
    }
    if let Some(p) = builder.finish() {
        packets.push(p);
    }
    packets
}

/// Decodes a datagram into its constituent messages, transparently
/// unwrapping compound framing.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the packet is malformed; a compound packet
/// whose declared part lengths overrun the payload yields
/// [`DecodeError::TruncatedCompound`].
// lint: allow(panic_path) — part ranges come from `split_compound`, which rejects any `offset + len` beyond the payload with `TruncatedCompound`
pub fn decode_packet(bytes: &[u8]) -> Result<Vec<Message>, DecodeError> {
    if bytes.first() == Some(&COMPOUND_TAG) {
        let mut msgs = Vec::new();
        for (offset, len) in split_compound(bytes)? {
            msgs.push(codec::decode_message(&bytes[offset..offset + len])?);
        }
        Ok(msgs)
    } else {
        Ok(vec![codec::decode_message(bytes)?])
    }
}

/// Like [`decode_packet`], but each part is cut as a zero-copy
/// [`Bytes::slice`] of the datagram, so blob fields (gossip metadata,
/// push-pull state) alias the received buffer instead of being copied.
/// This is the hot-path entry used by the simulator's packet delivery.
///
/// # Errors
///
/// Same as [`decode_packet`].
pub fn decode_packet_shared(bytes: &Bytes) -> Result<Vec<Message>, DecodeError> {
    if bytes.first() == Some(&COMPOUND_TAG) {
        let mut msgs = Vec::new();
        for (offset, len) in split_compound(bytes)? {
            let part = bytes.slice(offset..offset + len);
            msgs.push(codec::decode_message_shared(&part)?);
        }
        Ok(msgs)
    } else {
        Ok(vec![codec::decode_message_shared(bytes)?])
    }
}

/// Parses and validates a compound header, returning each part's
/// `(offset, len)` within `bytes` — the single framing parser behind
/// both the copying and zero-copy packet decoders.
// lint: allow(panic_path) — `bytes[1..]` cannot panic: both callers enter only after `bytes.first()` matched the compound tag, so the length is ≥ 1
fn split_compound(bytes: &[u8]) -> Result<Vec<(usize, usize)>, DecodeError> {
    let mut r = codec::Reader::new(&bytes[1..]);
    let count = r.get_u8()? as usize;
    let mut lens = Vec::with_capacity(count);
    for _ in 0..count {
        lens.push(r.get_u16()? as usize);
    }
    // First payload byte: tag + count + length table.
    let mut offset = 1 + 1 + 2 * count;
    let mut parts = Vec::with_capacity(count);
    for len in lens {
        if offset + len > bytes.len() {
            return Err(DecodeError::TruncatedCompound);
        }
        parts.push((offset, len));
        offset += len;
    }
    if offset != bytes.len() {
        return Err(DecodeError::TrailingBytes(bytes.len() - offset));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Ack, Alive, Suspect};
    use crate::types::{Incarnation, NodeAddr, SeqNo};

    fn enc(m: &Message) -> Bytes {
        codec::encode_message(m)
    }

    fn ack(seq: u32) -> Message {
        Message::Ack(Ack { seq: SeqNo(seq) })
    }

    #[test]
    fn single_message_is_sent_bare() {
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&ack(1))));
        let packet = b.finish().unwrap();
        assert_ne!(packet[0], COMPOUND_TAG);
        assert_eq!(decode_packet(&packet).unwrap(), vec![ack(1)]);
    }

    #[test]
    fn empty_builder_finishes_to_none() {
        assert!(CompoundBuilder::new(100).finish().is_none());
        assert!(CompoundBuilder::new(100).is_empty());
    }

    #[test]
    fn finish_into_fanout_encodes_once_and_emits_per_destination() {
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&ack(1))));
        assert!(b.try_add(enc(&ack(2))));
        let mut arena = vec![0xAAu8; 3]; // pre-existing arena content survives
        let mut emitted: Vec<(u8, std::ops::Range<usize>)> = Vec::new();
        let range = b
            .finish_into_fanout(&mut arena, &[10u8, 20, 30], |d, r| emitted.push((d, r)))
            .unwrap();
        assert_eq!(range.start, 3, "appended after the existing bytes");
        assert_eq!(
            emitted,
            vec![(10, range.clone()), (20, range.clone()), (30, range.clone())],
            "every destination references the single encoded slice"
        );
        assert_eq!(
            decode_packet(&arena[range]).unwrap(),
            vec![ack(1), ack(2)],
            "the shared slice is a well-formed packet"
        );
        assert!(b.is_empty(), "builder is reset for the next packet");
    }

    #[test]
    fn finish_into_fanout_with_no_destinations_appends_nothing() {
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&ack(1))));
        let mut arena = Vec::new();
        let dests: [u8; 0] = [];
        assert!(b
            .finish_into_fanout(&mut arena, &dests, |_, _| panic!("no emits"))
            .is_none());
        assert!(arena.is_empty());
    }

    #[test]
    fn multiple_messages_roundtrip_in_order() {
        let msgs: Vec<Message> = (0..10).map(ack).collect();
        let mut b = CompoundBuilder::new(1400);
        for m in &msgs {
            assert!(b.try_add(enc(m)));
        }
        assert_eq!(b.len(), 10);
        let packet = b.finish().unwrap();
        assert_eq!(packet[0], COMPOUND_TAG);
        assert_eq!(decode_packet(&packet).unwrap(), msgs);
    }

    #[test]
    fn budget_is_respected_after_first_message() {
        let big = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "x".into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::from(vec![0u8; 300]),
        });
        let mut b = CompoundBuilder::new(400);
        assert!(b.try_add(enc(&big)));
        // Second large message exceeds the 400-byte budget.
        assert!(!b.try_add(enc(&big)));
        let packet = b.finish().unwrap();
        assert!(packet.len() <= 400);
    }

    #[test]
    fn oversized_first_message_is_allowed() {
        let big = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "x".into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::from(vec![0u8; 2000]),
        });
        let mut b = CompoundBuilder::new(1400);
        assert!(b.try_add(enc(&big)));
        assert!(b.finish().unwrap().len() > 1400);
    }

    #[test]
    fn current_len_tracks_framing() {
        let mut b = CompoundBuilder::new(1400);
        assert_eq!(b.current_len(), 0);
        let a = enc(&ack(1));
        b.try_add(a.clone());
        assert_eq!(b.current_len(), a.len());
        b.try_add(a.clone());
        assert_eq!(b.current_len(), 2 + 4 + 2 * a.len());
        let packet = b.finish().unwrap();
        assert_eq!(packet.len(), 2 + 4 + 2 * a.len());
    }

    #[test]
    fn part_count_limit_enforced() {
        let mut b = CompoundBuilder::new(usize::MAX);
        for i in 0..MAX_COMPOUND_PARTS {
            assert!(b.try_add(enc(&ack(i as u32))));
        }
        assert!(!b.try_add(enc(&ack(9999))));
    }

    #[test]
    fn pack_all_preserves_every_message() {
        let msgs: Vec<Message> = (0..100)
            .map(|i| {
                Message::Suspect(Suspect {
                    incarnation: Incarnation(i),
                    node: format!("node-{i}").into(),
                    from: "me".into(),
                })
            })
            .collect();
        let packets = pack_all(msgs.iter().map(enc), 128);
        assert!(packets.len() > 1);
        let mut decoded = Vec::new();
        for p in &packets {
            assert!(p.len() <= 128, "packet over budget: {}", p.len());
            decoded.extend(decode_packet(p).unwrap());
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn finish_into_matches_finish_and_reuses_builder() {
        let mut scratch = Vec::new();
        let mut b = CompoundBuilder::new(1400);
        // Bare single message.
        assert!(b.try_add(enc(&ack(1))));
        let r1 = b.finish_into(&mut scratch).unwrap();
        // Compound, from the *same* (now reset) builder.
        assert!(b.try_add(enc(&ack(2))));
        assert!(b.try_add(enc(&ack(3))));
        let r2 = b.finish_into(&mut scratch).unwrap();
        assert_eq!(decode_packet(&scratch[r1]).unwrap(), vec![ack(1)]);
        assert_eq!(decode_packet(&scratch[r2]).unwrap(), vec![ack(2), ack(3)]);

        // Byte-for-byte identical to the owned finish().
        let mut owned = CompoundBuilder::new(1400);
        owned.try_add(enc(&ack(2)));
        owned.try_add(enc(&ack(3)));
        let r2 = b.try_add(enc(&ack(2))) && b.try_add(enc(&ack(3)));
        assert!(r2);
        let mut scratch2 = Vec::new();
        let range = b.finish_into(&mut scratch2).unwrap();
        assert_eq!(&scratch2[range], owned.finish().unwrap().as_ref());

        // Empty builder appends nothing.
        let before = scratch.len();
        assert!(b.finish_into(&mut scratch).is_none());
        assert_eq!(scratch.len(), before);
    }

    /// The u16 length-word boundary: a part of exactly `u16::MAX` bytes
    /// is framable, one byte more must be refused (previously the length
    /// was truncated modulo 65536, corrupting the packet).
    #[test]
    fn part_longer_than_u16_max_is_refused_not_truncated() {
        // Raw-bytes path, exactly at the boundary.
        let at_limit = vec![0u8; u16::MAX as usize];
        let mut b = CompoundBuilder::new(usize::MAX);
        assert!(b.try_add_bytes(&at_limit));
        assert_eq!(b.len(), 1);

        // One byte over: refused even as the (oversized-allowed) first
        // part, and refused as a follow-up part.
        let over = vec![0u8; u16::MAX as usize + 1];
        let mut b = CompoundBuilder::new(usize::MAX);
        assert!(!b.try_add_bytes(&over));
        assert!(b.is_empty());
        assert!(b.try_add_bytes(&at_limit));
        assert!(!b.try_add_bytes(&over));
        assert_eq!(b.len(), 1);

        // Message path: a push-pull whose encoding exceeds u16::MAX is
        // rolled back without corrupting the builder.
        let big_states: Vec<_> = (0..3000)
            .map(|i| crate::messages::PushNodeState {
                name: format!("node-{i:05}").into(),
                addr: NodeAddr::new([10, 0, 0, 1], 1),
                incarnation: Incarnation(i),
                state: crate::types::MemberState::Alive,
                meta: Bytes::from_static(b"0123456789"),
            })
            .collect();
        let big = Message::PushPull(crate::messages::PushPull {
            join: false,
            reply: false,
            states: big_states,
        });
        assert!(codec::encoded_len(&big) > u16::MAX as usize);
        let mut b = CompoundBuilder::new(usize::MAX);
        assert!(!b.try_add_msg(&big));
        assert!(b.is_empty());
        assert!(b.try_add_msg(&ack(1)), "builder stays usable after a refusal");
        let packet = b.finish().unwrap();
        assert_eq!(decode_packet(&packet).unwrap(), vec![ack(1)]);
    }

    #[test]
    fn truncated_compound_is_rejected() {
        let mut b = CompoundBuilder::new(1400);
        b.try_add(enc(&ack(1)));
        b.try_add(enc(&ack(2)));
        let packet = b.finish().unwrap();
        assert!(matches!(
            decode_packet(&packet[..packet.len() - 1]),
            Err(DecodeError::TruncatedCompound) | Err(DecodeError::UnexpectedEof)
        ));
    }
}
