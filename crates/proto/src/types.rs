//! Fundamental protocol value types.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;

/// The unique name of a group member.
///
/// Names are immutable UTF-8 strings; cloning is cheap (reference counted),
/// which matters because names are copied into every gossip message and
/// every membership event.
///
/// ```
/// use lifeguard_proto::NodeName;
/// let a = NodeName::from("node-1");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "node-1");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeName(Arc<str>);

impl NodeName {
    /// Creates a name from anything string-like.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        NodeName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the name in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the name is empty. Empty names are never valid members but
    /// can appear in partially-initialised messages.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeName({:?})", &*self.0)
    }
}

impl From<&str> for NodeName {
    fn from(s: &str) -> Self {
        NodeName(Arc::from(s))
    }
}

impl From<String> for NodeName {
    fn from(s: String) -> Self {
        NodeName(Arc::from(s))
    }
}

impl AsRef<str> for NodeName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A member's network address (IP + port).
///
/// This is a thin wrapper over [`SocketAddr`] so that protocol code cannot
/// accidentally mix node addresses with other socket addresses, while
/// remaining trivially convertible for real-network transports.
///
/// ```
/// use lifeguard_proto::NodeAddr;
/// let addr = NodeAddr::new([10, 0, 0, 1], 7946);
/// assert_eq!(addr.port(), 7946);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(SocketAddr);

impl NodeAddr {
    /// Creates an IPv4 node address.
    pub fn new(ip: [u8; 4], port: u16) -> Self {
        NodeAddr(SocketAddr::new(
            IpAddr::V4(Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3])),
            port,
        ))
    }

    /// The wrapped socket address.
    pub fn socket_addr(&self) -> SocketAddr {
        self.0
    }

    /// The IP component.
    pub fn ip(&self) -> IpAddr {
        self.0.ip()
    }

    /// The port component.
    pub fn port(&self) -> u16 {
        self.0.port()
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeAddr({})", self.0)
    }
}

impl From<SocketAddr> for NodeAddr {
    fn from(addr: SocketAddr) -> Self {
        NodeAddr(addr)
    }
}

impl From<NodeAddr> for SocketAddr {
    fn from(addr: NodeAddr) -> Self {
        addr.0
    }
}

/// A member's incarnation number.
///
/// Incarnation numbers establish precedence between competing `alive`,
/// `suspect` and `dead` messages about the same member (SWIM §4.2). Only the
/// member itself may increment its incarnation, which it does to refute a
/// suspicion.
///
/// ```
/// use lifeguard_proto::Incarnation;
/// let i = Incarnation(3);
/// assert!(i.next() > i);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Incarnation(pub u64);

impl Incarnation {
    /// The incarnation every member starts with.
    pub const ZERO: Incarnation = Incarnation(0);

    /// The next incarnation number.
    pub fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }

    /// Raw value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Incarnation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Sequence number correlating a `ping`/`indirect ping` with its
/// `ack`/`nack` response.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SeqNo(pub u32);

impl SeqNo {
    /// The next sequence number, wrapping on overflow.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }

    /// Raw value.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The protocol-visible state of a member.
///
/// State transitions follow SWIM with the Suspicion subprotocol:
/// `Alive → Suspect → Dead`, with `Suspect → Alive` on refutation. `Left` is
/// memberlist's graceful-departure state, which is treated like `Dead` for
/// dissemination purposes but is not a failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemberState {
    /// The member is believed healthy.
    Alive,
    /// The member failed a probe and is under suspicion.
    Suspect,
    /// The member was declared failed.
    Dead,
    /// The member left the group voluntarily.
    Left,
}

impl MemberState {
    /// Stable wire encoding of the state.
    pub fn as_u8(self) -> u8 {
        match self {
            MemberState::Alive => 0,
            MemberState::Suspect => 1,
            MemberState::Dead => 2,
            MemberState::Left => 3,
        }
    }

    /// Decodes a wire state byte.
    pub fn from_u8(v: u8) -> Option<MemberState> {
        match v {
            0 => Some(MemberState::Alive),
            1 => Some(MemberState::Suspect),
            2 => Some(MemberState::Dead),
            3 => Some(MemberState::Left),
            _ => None,
        }
    }

    /// Whether the state counts as a live group participant (alive or
    /// merely suspected).
    pub fn is_live(self) -> bool {
        matches!(self, MemberState::Alive | MemberState::Suspect)
    }
}

impl fmt::Display for MemberState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemberState::Alive => "alive",
            MemberState::Suspect => "suspect",
            MemberState::Dead => "dead",
            MemberState::Left => "left",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_name_roundtrip_and_display() {
        let n = NodeName::from("node-7");
        assert_eq!(n.to_string(), "node-7");
        assert_eq!(n.as_ref(), "node-7");
        assert_eq!(n.len(), 6);
        assert!(!n.is_empty());
        assert!(NodeName::from("").is_empty());
    }

    #[test]
    fn node_name_ordering_is_lexicographic() {
        let a = NodeName::from("a");
        let b = NodeName::from("b");
        assert!(a < b);
    }

    #[test]
    fn node_addr_conversions() {
        let addr = NodeAddr::new([10, 1, 2, 3], 7946);
        let sock: SocketAddr = addr.into();
        assert_eq!(NodeAddr::from(sock), addr);
        assert_eq!(addr.port(), 7946);
        assert_eq!(addr.to_string(), "10.1.2.3:7946");
    }

    #[test]
    fn incarnation_next_is_monotonic() {
        let i = Incarnation::ZERO;
        assert_eq!(i.next(), Incarnation(1));
        assert!(i.next() > i);
        assert_eq!(Incarnation(9).get(), 9);
    }

    #[test]
    fn seqno_wraps() {
        assert_eq!(SeqNo(u32::MAX).next(), SeqNo(0));
        assert_eq!(SeqNo(1).next(), SeqNo(2));
    }

    #[test]
    fn member_state_wire_roundtrip() {
        for s in [
            MemberState::Alive,
            MemberState::Suspect,
            MemberState::Dead,
            MemberState::Left,
        ] {
            assert_eq!(MemberState::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(MemberState::from_u8(200), None);
    }

    #[test]
    fn member_state_liveness() {
        assert!(MemberState::Alive.is_live());
        assert!(MemberState::Suspect.is_live());
        assert!(!MemberState::Dead.is_live());
        assert!(!MemberState::Left.is_live());
    }
}
