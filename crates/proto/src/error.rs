//! Decoding errors.

use std::error::Error;
use std::fmt;

/// An error produced while decoding a wire message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The buffer ended before the message was complete.
    UnexpectedEof,
    /// The leading tag byte does not name a known message type.
    UnknownTag(u8),
    /// A name or metadata field was not valid UTF-8.
    InvalidUtf8,
    /// An address field used an unknown address-family marker.
    UnknownAddrFamily(u8),
    /// A member-state byte was out of range.
    UnknownState(u8),
    /// A compound packet declared more parts than its payload contains.
    TruncatedCompound,
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of packet"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::UnknownAddrFamily(v) => write!(f, "unknown address family marker {v}"),
            DecodeError::UnknownState(v) => write!(f, "unknown member state {v}"),
            DecodeError::TruncatedCompound => write!(f, "compound packet is truncated"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            DecodeError::UnexpectedEof,
            DecodeError::UnknownTag(9),
            DecodeError::InvalidUtf8,
            DecodeError::UnknownAddrFamily(7),
            DecodeError::UnknownState(5),
            DecodeError::TruncatedCompound,
            DecodeError::TrailingBytes(3),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
