//! SWIM / Lifeguard protocol messages.

use bytes::Bytes;

use crate::types::{Incarnation, MemberState, NodeAddr, NodeName, SeqNo};

/// A direct liveness probe (SWIM `ping`).
///
/// `target` lets the receiver detect probes that were routed to a freshly
/// restarted process with a different name (memberlist behaviour); `source`
/// and `source_addr` let the receiver learn about the prober.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ping {
    /// Correlates the eventual [`Ack`].
    pub seq: SeqNo,
    /// Name of the node being probed.
    pub target: NodeName,
    /// Name of the probing node.
    pub source: NodeName,
    /// Address of the probing node.
    pub source_addr: NodeAddr,
}

/// A request to probe `target` on behalf of `source` (SWIM `ping-req`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndirectPing {
    /// Correlates the eventual [`Ack`] or [`Nack`] back to the origin.
    pub seq: SeqNo,
    /// Name of the node to probe.
    pub target: NodeName,
    /// Address of the node to probe.
    pub target_addr: NodeAddr,
    /// Whether the origin understands [`Nack`] responses (Lifeguard
    /// LHA-Probe extension; always true between Lifeguard peers).
    pub nack: bool,
    /// Name of the originating prober.
    pub source: NodeName,
    /// Address of the originating prober.
    pub source_addr: NodeAddr,
}

/// Acknowledgement of a [`Ping`] or a successfully relayed indirect probe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ack {
    /// Sequence number of the probe being acknowledged.
    pub seq: SeqNo,
}

/// Negative acknowledgement of an [`IndirectPing`] (Lifeguard extension).
///
/// Sent by an intermediary at 80% of the probe timeout when it has not yet
/// received an `ack` from the target. Tells the origin that the
/// *intermediary* is responsive even though the target may not be, feeding
/// the origin's Local Health Multiplier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Nack {
    /// Sequence number of the indirect probe.
    pub seq: SeqNo,
}

/// Gossip: `node` is suspected of having failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Suspect {
    /// Incarnation of `node` the suspicion applies to.
    pub incarnation: Incarnation,
    /// The suspected member.
    pub node: NodeName,
    /// The member that raised (or independently confirmed) the suspicion.
    pub from: NodeName,
}

/// Gossip: `node` is alive at `incarnation` (join announcement or
/// suspicion refutation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alive {
    /// The member's current incarnation.
    pub incarnation: Incarnation,
    /// The member this message is about.
    pub node: NodeName,
    /// Where the member can be reached.
    pub addr: NodeAddr,
    /// Opaque application metadata carried with the membership entry.
    pub meta: Bytes,
}

/// Gossip: `node` was declared failed (memberlist renames SWIM's
/// `confirm` to `dead`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dead {
    /// Incarnation of `node` the declaration applies to.
    pub incarnation: Incarnation,
    /// The member declared dead.
    pub node: NodeName,
    /// The member that declared it (equal to `node` for graceful leave).
    pub from: NodeName,
}

/// One member's knowledge about one node, exchanged during push-pull
/// anti-entropy sync.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PushNodeState {
    /// Node the entry describes.
    pub name: NodeName,
    /// Last known address.
    pub addr: NodeAddr,
    /// Last known incarnation.
    pub incarnation: Incarnation,
    /// Last known state.
    pub state: MemberState,
    /// Application metadata.
    pub meta: Bytes,
}

/// Full state exchange (memberlist anti-entropy, over the stream
/// transport).
///
/// A joining node sends `join = true`; the receiver replies with its own
/// `PushPull` with `reply = true`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PushPull {
    /// Whether this exchange is part of a join.
    pub join: bool,
    /// Whether this message is the response half of the exchange.
    pub reply: bool,
    /// The sender's full membership table (including dead entries still
    /// within the retention window).
    pub states: Vec<PushNodeState>,
}

/// Incremental state exchange (delta anti-entropy, over the stream
/// transport).
///
/// Instead of the full membership table, the sender ships only the
/// members whose record changed since the watermark the receiver last
/// confirmed. Watermarks are expressed in the *producing node's* private
/// update-sequence space and are only meaningful for one instance of
/// that node, identified by `epoch`: a receiver that cannot honour
/// `since` (it restarted, or delta sync is disabled) falls back to a
/// full [`PushPull`] exchange.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PushPullDelta {
    /// Name of the sending node (watermark bookkeeping is per peer).
    pub from: NodeName,
    /// Instance id of the sender; its `seq` values are scoped to it.
    pub epoch: u64,
    /// Instance id of the *receiver* that `since` refers to. The
    /// receiver must answer with a full exchange if this is not its
    /// current epoch.
    pub since_epoch: u64,
    /// Highest receiver update-seq the sender has already merged: "I
    /// have your state through `since`; send me what changed after it."
    /// Doubles as the acknowledgement that lets the receiver advance its
    /// own sent-state watermark for the sender.
    pub since: u64,
    /// The sender's current update-seq; `entries` bring the receiver's
    /// knowledge of the sender up to this point.
    pub seq: u64,
    /// Whether this message is the response half of the exchange.
    pub reply: bool,
    /// Members whose record changed after the sender's sent-state
    /// watermark for the receiver.
    pub entries: Vec<PushNodeState>,
}

/// Any protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// Direct probe.
    Ping(Ping),
    /// Indirect probe request.
    IndirectPing(IndirectPing),
    /// Probe acknowledgement.
    Ack(Ack),
    /// Negative acknowledgement (Lifeguard).
    Nack(Nack),
    /// Suspicion gossip.
    Suspect(Suspect),
    /// Liveness gossip.
    Alive(Alive),
    /// Failure gossip.
    Dead(Dead),
    /// Anti-entropy state sync.
    PushPull(PushPull),
    /// Incremental anti-entropy state sync.
    PushPullDelta(PushPullDelta),
}

/// Discriminant of a [`Message`], used for telemetry and wire tags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageKind {
    /// [`Ping`]
    Ping,
    /// [`IndirectPing`]
    IndirectPing,
    /// [`Ack`]
    Ack,
    /// [`Nack`]
    Nack,
    /// [`Suspect`]
    Suspect,
    /// [`Alive`]
    Alive,
    /// [`Dead`]
    Dead,
    /// [`PushPull`]
    PushPull,
    /// [`PushPullDelta`]
    PushPullDelta,
}

impl MessageKind {
    /// All message kinds, in wire-tag order.
    pub const ALL: [MessageKind; 9] = [
        MessageKind::Ping,
        MessageKind::IndirectPing,
        MessageKind::Ack,
        MessageKind::Nack,
        MessageKind::Suspect,
        MessageKind::Alive,
        MessageKind::Dead,
        MessageKind::PushPull,
        MessageKind::PushPullDelta,
    ];

    /// Stable index (= wire tag) of the kind.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Ping => "ping",
            MessageKind::IndirectPing => "ping-req",
            MessageKind::Ack => "ack",
            MessageKind::Nack => "nack",
            MessageKind::Suspect => "suspect",
            MessageKind::Alive => "alive",
            MessageKind::Dead => "dead",
            MessageKind::PushPull => "push-pull",
            MessageKind::PushPullDelta => "push-pull-delta",
        }
    }
}

impl Message {
    /// The kind discriminant of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Ping(_) => MessageKind::Ping,
            Message::IndirectPing(_) => MessageKind::IndirectPing,
            Message::Ack(_) => MessageKind::Ack,
            Message::Nack(_) => MessageKind::Nack,
            Message::Suspect(_) => MessageKind::Suspect,
            Message::Alive(_) => MessageKind::Alive,
            Message::Dead(_) => MessageKind::Dead,
            Message::PushPull(_) => MessageKind::PushPull,
            Message::PushPullDelta(_) => MessageKind::PushPullDelta,
        }
    }

    /// Whether the message is membership gossip (eligible for
    /// piggybacking on failure-detector packets).
    pub fn is_gossip(&self) -> bool {
        matches!(
            self,
            Message::Suspect(_) | Message::Alive(_) | Message::Dead(_)
        )
    }

    /// The member name a gossip message is about, if any.
    pub fn gossip_subject(&self) -> Option<&NodeName> {
        match self {
            Message::Suspect(s) => Some(&s.node),
            Message::Alive(a) => Some(&a.node),
            Message::Dead(d) => Some(&d.node),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> NodeName {
        NodeName::from(s)
    }

    #[test]
    fn message_kind_mapping() {
        let m = Message::Ack(Ack { seq: SeqNo(1) });
        assert_eq!(m.kind(), MessageKind::Ack);
        assert_eq!(m.kind().name(), "ack");
        assert!(!m.is_gossip());
    }

    #[test]
    fn gossip_subject_extraction() {
        let s = Message::Suspect(Suspect {
            incarnation: Incarnation(1),
            node: name("x"),
            from: name("y"),
        });
        assert!(s.is_gossip());
        assert_eq!(s.gossip_subject(), Some(&name("x")));

        let p = Message::Ping(Ping {
            seq: SeqNo(0),
            target: name("x"),
            source: name("y"),
            source_addr: NodeAddr::new([127, 0, 0, 1], 1),
        });
        assert_eq!(p.gossip_subject(), None);
    }

    #[test]
    fn kind_indices_are_dense_and_ordered() {
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
