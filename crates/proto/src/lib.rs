//! Wire protocol for the Lifeguard/SWIM failure detector.
//!
//! This crate defines the message vocabulary of the SWIM protocol as
//! implemented by HashiCorp `memberlist`, plus the `nack` message added by
//! the Lifeguard paper (DSN 2018), and a compact hand-rolled binary codec
//! for putting those messages on the wire.
//!
//! The protocol has two transports:
//!
//! * **Datagram ("UDP")** messages: [`Ping`], [`IndirectPing`], [`Ack`],
//!   [`Nack`], and the gossip messages [`Suspect`], [`Alive`], [`Dead`].
//!   Several of these are usually packed into a single *compound* packet
//!   (see [`compound`]) so that gossip can piggyback on failure-detector
//!   traffic without extra packets.
//! * **Stream ("TCP")** messages: [`PushPull`] anti-entropy state sync and
//!   fallback direct probes.
//!
//! # Example
//!
//! ```
//! use lifeguard_proto::{Message, Ack, SeqNo, codec};
//!
//! # fn main() -> Result<(), lifeguard_proto::DecodeError> {
//! let msg = Message::Ack(Ack { seq: SeqNo(42) });
//! let bytes = codec::encode_message(&msg);
//! let back = codec::decode_message(&bytes)?;
//! assert_eq!(msg, back);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod compound;
mod error;
mod messages;
mod types;

pub use error::DecodeError;
pub use messages::{
    Ack, Alive, Dead, IndirectPing, Message, MessageKind, Nack, Ping, PushNodeState, PushPull,
    PushPullDelta, Suspect,
};
pub use types::{Incarnation, MemberState, NodeAddr, NodeName, SeqNo};

/// Default maximum datagram payload, matching memberlist's UDP MTU budget.
///
/// Compound packets built by [`compound::CompoundBuilder`] never exceed this
/// size unless a single message is itself larger.
pub const DEFAULT_PACKET_BUDGET: usize = 1400;
