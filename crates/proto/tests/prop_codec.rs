//! Property tests for the wire codec and compound packing.

use bytes::Bytes;
use proptest::prelude::*;

use lifeguard_proto::compound::{decode_packet, pack_all, CompoundBuilder};
use lifeguard_proto::{
    codec, Ack, Alive, Dead, IndirectPing, Incarnation, MemberState, Message, Nack, NodeAddr,
    NodeName, Ping, PushNodeState, PushPull, PushPullDelta, SeqNo, Suspect,
};

fn name_strategy() -> impl Strategy<Value = NodeName> {
    "[a-z0-9_.-]{1,24}".prop_map(|s| NodeName::from(s.as_str()))
}

fn addr_strategy() -> impl Strategy<Value = NodeAddr> {
    prop_oneof![
        (any::<[u8; 4]>(), any::<u16>()).prop_map(|(ip, port)| NodeAddr::new(ip, port)),
        (any::<[u8; 16]>(), any::<u16>()).prop_map(|(ip, port)| {
            NodeAddr::from(std::net::SocketAddr::new(
                std::net::IpAddr::from(ip),
                port,
            ))
        }),
    ]
}

fn meta_strategy() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn state_strategy() -> impl Strategy<Value = MemberState> {
    prop_oneof![
        Just(MemberState::Alive),
        Just(MemberState::Suspect),
        Just(MemberState::Dead),
        Just(MemberState::Left),
    ]
}

fn push_state_strategy() -> impl Strategy<Value = PushNodeState> {
    (
        name_strategy(),
        addr_strategy(),
        any::<u64>(),
        state_strategy(),
        meta_strategy(),
    )
        .prop_map(|(name, addr, inc, state, meta)| PushNodeState {
            name,
            addr,
            incarnation: Incarnation(inc),
            state,
            meta,
        })
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), name_strategy(), name_strategy(), addr_strategy()).prop_map(
            |(seq, target, source, source_addr)| Message::Ping(Ping {
                seq: SeqNo(seq),
                target,
                source,
                source_addr,
            })
        ),
        (
            any::<u32>(),
            name_strategy(),
            addr_strategy(),
            any::<bool>(),
            name_strategy(),
            addr_strategy()
        )
            .prop_map(|(seq, target, target_addr, nack, source, source_addr)| {
                Message::IndirectPing(IndirectPing {
                    seq: SeqNo(seq),
                    target,
                    target_addr,
                    nack,
                    source,
                    source_addr,
                })
            }),
        any::<u32>().prop_map(|seq| Message::Ack(Ack { seq: SeqNo(seq) })),
        any::<u32>().prop_map(|seq| Message::Nack(Nack { seq: SeqNo(seq) })),
        (any::<u64>(), name_strategy(), name_strategy()).prop_map(|(inc, node, from)| {
            Message::Suspect(Suspect {
                incarnation: Incarnation(inc),
                node,
                from,
            })
        }),
        (any::<u64>(), name_strategy(), addr_strategy(), meta_strategy()).prop_map(
            |(inc, node, addr, meta)| Message::Alive(Alive {
                incarnation: Incarnation(inc),
                node,
                addr,
                meta,
            })
        ),
        (any::<u64>(), name_strategy(), name_strategy()).prop_map(|(inc, node, from)| {
            Message::Dead(Dead {
                incarnation: Incarnation(inc),
                node,
                from,
            })
        }),
        (
            any::<bool>(),
            any::<bool>(),
            proptest::collection::vec(push_state_strategy(), 0..8)
        )
            .prop_map(|(join, reply, states)| Message::PushPull(PushPull {
                join,
                reply,
                states
            })),
        (
            name_strategy(),
            any::<u64>(),
            any::<u64>(),
            (any::<u64>(), any::<u64>(), any::<bool>()),
            proptest::collection::vec(push_state_strategy(), 0..8)
        )
            .prop_map(|(from, epoch, since_epoch, (since, seq, reply), entries)| {
                Message::PushPullDelta(PushPullDelta {
                    from,
                    epoch,
                    since_epoch,
                    since,
                    seq,
                    reply,
                    entries,
                })
            }),
    ]
}

proptest! {
    /// Every message survives an encode/decode roundtrip.
    #[test]
    fn roundtrip_any_message(msg in message_strategy()) {
        let bytes = codec::encode_message(&msg);
        let back = codec::decode_message(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    /// The analytic length always matches the actual encoding.
    #[test]
    fn encoded_len_is_exact(msg in message_strategy()) {
        prop_assert_eq!(codec::encode_message(&msg).len(), codec::encoded_len(&msg));
    }

    /// Decoding never panics on arbitrary bytes — it returns a clean
    /// error for garbage.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode_message(&bytes);
        let _ = decode_packet(&bytes);
    }

    /// Truncating a valid encoding always produces an error, never a
    /// wrong message.
    #[test]
    fn truncation_is_always_detected(msg in message_strategy(), cut_frac in 0.0f64..1.0) {
        let bytes = codec::encode_message(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(codec::decode_message(&bytes[..cut]).is_err());
        }
    }

    /// pack_all never loses, duplicates or reorders messages, and every
    /// packet respects the budget (when messages fit individually).
    #[test]
    fn pack_all_is_lossless(
        msgs in proptest::collection::vec(message_strategy(), 0..40),
        budget in 256usize..2048,
    ) {
        let encoded: Vec<Bytes> = msgs.iter().map(codec::encode_message).collect();
        let packets = pack_all(encoded.clone(), budget);
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(decode_packet(p).expect("packet decodes"));
        }
        prop_assert_eq!(decoded, msgs);
        for (i, p) in packets.iter().enumerate() {
            // A packet may exceed the budget only if it is a single
            // oversized message.
            if p.len() > budget {
                prop_assert_eq!(decode_packet(p).unwrap().len(), 1, "packet {} over budget", i);
            }
        }
    }

    /// A builder's current_len always equals the finished packet size.
    #[test]
    fn builder_len_is_truthful(msgs in proptest::collection::vec(message_strategy(), 1..20)) {
        let mut builder = CompoundBuilder::new(4096);
        for m in &msgs {
            builder.try_add(codec::encode_message(m));
        }
        let predicted = builder.current_len();
        let packet = builder.finish().expect("non-empty");
        prop_assert_eq!(predicted, packet.len());
    }

    /// Encoding straight into the builder (`try_add_msg`) produces
    /// byte-identical packets to adding pre-encoded messages, with the
    /// same accept/reject decisions.
    #[test]
    fn try_add_msg_is_equivalent_to_pre_encoding(
        msgs in proptest::collection::vec(message_strategy(), 1..20),
        budget in 64usize..2048,
    ) {
        let mut direct = CompoundBuilder::new(budget);
        let mut pre = CompoundBuilder::new(budget);
        for m in &msgs {
            let a = direct.try_add_msg(m);
            let b = pre.try_add(codec::encode_message(m));
            prop_assert_eq!(a, b, "accept/reject diverged for {:?}", m);
        }
        prop_assert_eq!(direct.finish(), pre.finish());
    }

    /// The zero-copy decoders agree with the copying decoders on every
    /// packet shape (bare and compound).
    #[test]
    fn shared_decode_matches_copying_decode(
        msgs in proptest::collection::vec(message_strategy(), 1..20),
    ) {
        let mut builder = CompoundBuilder::new(usize::MAX);
        for m in &msgs {
            prop_assert!(builder.try_add(codec::encode_message(m)));
        }
        let packet = builder.finish().expect("non-empty");
        let copied = decode_packet(&packet).expect("copying decode");
        let shared = lifeguard_proto::compound::decode_packet_shared(&packet)
            .expect("shared decode");
        prop_assert_eq!(&copied, &shared);
        prop_assert_eq!(&copied, &msgs);

        // Bare single-message path.
        let one = codec::encode_message(&msgs[0]);
        prop_assert_eq!(
            codec::decode_message_shared(&one).expect("shared"),
            codec::decode_message(&one).expect("copying")
        );
    }
}
