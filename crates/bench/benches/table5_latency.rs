//! Table V (bench-scale): first-detection and full-dissemination latency
//! of true failures in the Threshold experiment, per configuration.
//!
//! Prints the median latencies it observed; Lifeguard should sit within
//! a small factor of SWIM (the paper's median penalty is < 0.1%, with
//! 6–9% at the 99th/99.9th percentiles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifeguard_bench::bench_threshold;
use lifeguard_core::config::Config;
use lifeguard_experiments::tables::table1_configs;

fn table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_threshold_latency");
    group.sample_size(10);
    for (label, components) in table1_configs() {
        let config = Config::lan().with_components(components);
        let out = bench_threshold(3, config.clone(), 42);
        let detect: Vec<String> = out
            .first_detect
            .iter()
            .map(|d| match d {
                Some(d) => format!("{:.2}s", d.as_secs_f64()),
                None => "-".into(),
            })
            .collect();
        println!("table5[{label}]: first detections {detect:?}");
        group.bench_with_input(BenchmarkId::new("run", label), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                bench_threshold(3, config.clone(), seed)
                    .first_detect
                    .iter()
                    .filter(|d| d.is_some())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table5);
criterion_main!(benches);
