//! Cluster-scale simulation benchmark: the PERFORMANCE.md §9 scaling
//! curve and its regression gates.
//!
//! Three roster sizes are exercised — 5 000 honest members, and 20 000 /
//! 100 000 members as 512 real protocol instances plus phantom members
//! (roster entries answered by the canned prober-side responder, so the
//! failure detector, sampling and gossip planes all operate against the
//! full roster at ~O(real) driver cost). Each size measures
//!
//! * **build time** — full-mesh bootstrap of every node's member table,
//! * **memory** — live heap bytes per member-table entry, via a counting
//!   global allocator (`real × total` entries dominate the footprint),
//! * **steady state** — wall-clock per 100 ms simulated slice, and
//! * **churn** — the same slice with ≤ 1 % of the real members taking a
//!   metadata update per slice (phantoms carry no driver to update; as a
//!   fraction of the full roster the churn is correspondingly smaller).
//!
//! Every scenario runs at least twice — serial (`workers = 1`) and
//! parallel (`workers ≥ 2`) — and the runs must produce **identical
//! fingerprints** (event trace, telemetry totals, every member table).
//! That determinism check is a hard gate at every size; the speed-up
//! ratio is only gated when the host actually has more than one core
//! (CI containers often don't, and on one core the lane scheduler's
//! channel hops are pure overhead).
//!
//! Anti-entropy is disabled (`push_pull_interval = None`) for these
//! slices: a 30 s push-pull at 100 k members is an O(total) stream
//! exchange that would dominate any 100 ms slice it lands in, and the
//! push-pull plane has its own benchmark (`micro.rs::bench_push_pull`)
//! with delta-sync gates. The slices here isolate the probe/gossip/timer
//! hot path that the sharded membership plane and parallel lanes serve.
//!
//! The 5 000-member scenario always runs (CI push gate). The 20 000 and
//! 100 000 scenarios run when `LIFEGUARD_BENCH_SCALE=full` is set
//! (nightly / manual dispatch) — a 100 k build touches ~51 M member
//! entries (~10 GB live) and is too heavy for every push.
//!
//! Results are written to `target/BENCH_cluster.json` for CI's
//! independent re-check and for `docs/PERFORMANCE.md` §9.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bytes::Bytes;
use lifeguard_core::config::Config;
use lifeguard_sim::cluster::{Cluster, ClusterBuilder, SimAction};

// ---------------------------------------------------------------------
// Live-byte accounting
// ---------------------------------------------------------------------

/// Pass-through allocator tracking live heap bytes — the instrument
/// behind the memory-per-member gate. Always on; two relaxed atomic
/// ops per call are noise next to the allocation itself.
struct ByteCountingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus atomic counter updates —
// the layout/pointer contracts `GlobalAlloc` requires are delegated
// unchanged to an allocator that upholds them.
unsafe impl GlobalAlloc for ByteCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded verbatim from our caller, who
        // upholds GlobalAlloc's contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: as in `alloc` — arguments forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: as in `alloc` — arguments forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: as in `alloc` — arguments forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: ByteCountingAlloc = ByteCountingAlloc;

fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Run fingerprint
// ---------------------------------------------------------------------

/// FNV-1a over everything a run observably produced: the event trace,
/// the telemetry totals and every node's full member table. Two runs
/// with equal fingerprints made the same protocol decisions; hashing
/// (rather than the string fingerprint the integration tests build)
/// keeps the 51 M-entry comparison at 100 k members cheap.
fn fingerprint(c: &Cluster) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    for e in c.trace().events() {
        eat(format!("{:?}/{}/{:?}\n", e.at, e.reporter, e.event).as_bytes());
    }
    eat(format!("{:?}", c.telemetry().total()).as_bytes());
    for i in 0..c.len() {
        // Iteration order is a pure function of table state (shard count
        // is fixed within a comparison), so no sort is needed.
        for m in c.node(i).members() {
            eat(m.name.as_str().as_bytes());
            eat(&[m.state as u8]);
            eat(&m.incarnation.0.to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

const SHARDS: usize = 8;
const QUIESCE: Duration = Duration::from_secs(3);
const SLICE: Duration = Duration::from_millis(100);
const SLICES: usize = 5;

struct RunResult {
    build_secs: f64,
    /// Live heap bytes attributable to the cluster right after build.
    cluster_bytes: u64,
    /// Best wall-clock for one 100 ms steady-state slice.
    steady_slice_secs: f64,
    /// Best wall-clock for one 100 ms slice under ≤ 1 % metadata churn.
    churn_slice_secs: f64,
    fingerprint: u64,
}

/// One full measured run: build, quiesce, steady slices, churn slices.
/// The schedule is identical for every `workers` value, so fingerprints
/// are directly comparable.
fn run_scenario(real: usize, phantoms: usize, workers: usize, seed: u64) -> RunResult {
    let mut cfg = Config::lan().lifeguard().with_shards(SHARDS);
    cfg.push_pull_interval = None; // benched separately; see module doc
    let before = live_bytes();
    let t0 = Instant::now();
    let mut cluster = ClusterBuilder::new(real)
        .config(cfg)
        .seed(seed)
        .full_mesh(true)
        .phantom_members(phantoms)
        .workers(workers)
        .build();
    let build_secs = t0.elapsed().as_secs_f64();
    let cluster_bytes = live_bytes().saturating_sub(before);

    cluster.run_for(QUIESCE);

    let mut steady = f64::INFINITY;
    for _ in 0..SLICES {
        let t = Instant::now();
        cluster.run_for(SLICE);
        steady = steady.min(t.elapsed().as_secs_f64());
    }

    // ≤ 1 % of the real members take a metadata update per slice —
    // live roster changes riding the gossip plane, no failure cascades.
    let churn_per_slice = (real / 100).max(1);
    let mut churn = f64::INFINITY;
    for s in 0..SLICES {
        let t = Instant::now();
        for k in 0..churn_per_slice {
            let node = (s * 131 + k * 37) % real;
            cluster.apply(SimAction::UpdateMeta {
                node,
                meta: Bytes::from(format!("gen-{s}-{k}").into_bytes()),
            });
        }
        cluster.run_for(SLICE);
        churn = churn.min(t.elapsed().as_secs_f64());
    }

    assert!(
        cluster.converged(),
        "cluster (real {real}, phantoms {phantoms}) lost convergence during the bench"
    );
    RunResult {
        build_secs,
        cluster_bytes,
        steady_slice_secs: steady,
        churn_slice_secs: churn,
        fingerprint: fingerprint(&cluster),
    }
}

// ---------------------------------------------------------------------
// Per-size gates and report
// ---------------------------------------------------------------------

struct Gates {
    /// Ceiling for one serial steady-state 100 ms slice, seconds.
    steady_slice_secs: f64,
    /// Ceiling for one serial churn 100 ms slice, seconds.
    churn_slice_secs: f64,
    /// Ceiling for live heap bytes per member-table entry.
    bytes_per_entry: f64,
}

struct SizeReport {
    label: &'static str,
    real: usize,
    phantoms: usize,
    serial: RunResult,
    /// (workers, run) for each parallel worker count tested.
    parallel: Vec<(usize, RunResult)>,
    bytes_per_entry: f64,
    deterministic: bool,
}

fn measure_size(
    label: &'static str,
    real: usize,
    phantoms: usize,
    parallel_workers: &[usize],
    seed: u64,
    gates: &Gates,
    cores: usize,
) -> SizeReport {
    let total = real + phantoms;
    eprintln!("cluster/{label}: building {real} real + {phantoms} phantom members (serial)…");
    let serial = run_scenario(real, phantoms, 1, seed);
    let entries = (real as u64 * total as u64) as f64;
    let bytes_per_entry = serial.cluster_bytes as f64 / entries;
    eprintln!(
        "cluster/{label}: build {:.2}s, {:.0} B/table-entry, steady {:.1} ms/slice, \
         churn {:.1} ms/slice (serial)",
        serial.build_secs,
        bytes_per_entry,
        serial.steady_slice_secs * 1e3,
        serial.churn_slice_secs * 1e3,
    );

    let mut parallel = Vec::new();
    let mut deterministic = true;
    for &w in parallel_workers {
        let run = run_scenario(real, phantoms, w, seed);
        let same = run.fingerprint == serial.fingerprint;
        deterministic &= same;
        eprintln!(
            "cluster/{label}: workers={w} steady {:.1} ms/slice ({:.2}× serial), \
             fingerprint {}",
            run.steady_slice_secs * 1e3,
            serial.steady_slice_secs / run.steady_slice_secs.max(1e-12),
            if same { "identical" } else { "DIVERGED" },
        );
        parallel.push((w, run));
    }

    // Hard gates. Determinism is unconditional; wall-clock and memory
    // ceilings are generous (≈3–5× a warm local run) so they trip on
    // asymptotic regressions, not scheduler noise; the speed-up ratio
    // only gates on genuinely multi-core hosts.
    assert!(
        deterministic,
        "cluster/{label}: parallel execution diverged from serial — \
         worker count must be unobservable"
    );
    assert!(
        serial.steady_slice_secs <= gates.steady_slice_secs,
        "cluster/{label}: steady 100 ms slice took {:.3}s (gate {:.3}s)",
        serial.steady_slice_secs,
        gates.steady_slice_secs,
    );
    assert!(
        serial.churn_slice_secs <= gates.churn_slice_secs,
        "cluster/{label}: churn 100 ms slice took {:.3}s (gate {:.3}s)",
        serial.churn_slice_secs,
        gates.churn_slice_secs,
    );
    assert!(
        bytes_per_entry <= gates.bytes_per_entry,
        "cluster/{label}: {bytes_per_entry:.0} live bytes per member-table entry \
         (gate {:.0})",
        gates.bytes_per_entry,
    );
    if cores > 1 {
        if let Some((w, run)) = parallel.first() {
            assert!(
                run.steady_slice_secs <= serial.steady_slice_secs * 1.5,
                "cluster/{label}: workers={w} steady slice {:.3}s is >1.5× serial \
                 {:.3}s on a {cores}-core host",
                run.steady_slice_secs,
                serial.steady_slice_secs,
            );
        }
    }

    SizeReport {
        label,
        real,
        phantoms,
        serial,
        parallel,
        bytes_per_entry,
        deterministic,
    }
}

fn json_for(reports: &[SizeReport], cores: usize) -> String {
    let mut out = String::from("{\n  \"bench\": \"cluster\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str("  \"slice_ms\": 100,\n  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let total = r.real + r.phantoms;
        out.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"members\": {},\n      \
             \"real\": {},\n      \"phantoms\": {},\n      \
             \"build_secs\": {:.3},\n      \"bytes_per_table_entry\": {:.1},\n      \
             \"steady_slice_ms_serial\": {:.3},\n      \
             \"churn_slice_ms_serial\": {:.3},\n      \"deterministic\": {},\n      \
             \"parallel\": [",
            r.label,
            total,
            r.real,
            r.phantoms,
            r.serial.build_secs,
            r.bytes_per_entry,
            r.serial.steady_slice_secs * 1e3,
            r.serial.churn_slice_secs * 1e3,
            r.deterministic,
        ));
        for (j, (w, run)) in r.parallel.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"workers\": {w}, \"steady_slice_ms\": {:.3}, \
                 \"speedup_vs_serial\": {:.3}, \"fingerprint_matches\": {}}}",
                run.steady_slice_secs * 1e3,
                r.serial.steady_slice_secs / run.steady_slice_secs.max(1e-12),
                run.fingerprint == r.serial.fingerprint,
            ));
        }
        out.push_str("]\n    }");
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn cluster_group(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let full = std::env::var("LIFEGUARD_BENCH_SCALE").as_deref() == Ok("full");

    let mut reports = Vec::new();

    // 5 000 honest members — every member runs the full protocol. This
    // is the push-CI gate; ceilings sized from a warm local run on one
    // 2025-class core (steady ≈ 0.35 s, churn ≈ 0.55 s, ≈ 210 B/entry).
    reports.push(measure_size(
        "5k",
        5_000,
        0,
        &[2],
        0x5CA1E,
        &Gates {
            steady_slice_secs: 2.0,
            churn_slice_secs: 3.0,
            bytes_per_entry: 1024.0,
        },
        cores,
    ));

    if full {
        // 20 000 members: 512 real + phantoms. Worker counts 2 and 4
        // both pin to the serial fingerprint.
        reports.push(measure_size(
            "20k",
            512,
            19_488,
            &[2, 4],
            0x20AD5,
            &Gates {
                steady_slice_secs: 2.0,
                churn_slice_secs: 3.0,
                bytes_per_entry: 1024.0,
            },
            cores,
        ));
        // 100 000 members: the headline size. ~51 M table entries.
        reports.push(measure_size(
            "100k",
            512,
            99_488,
            &[2],
            0x100AD,
            &Gates {
                steady_slice_secs: 5.0,
                churn_slice_secs: 6.0,
                bytes_per_entry: 1024.0,
            },
            cores,
        ));
    } else {
        eprintln!("cluster: set LIFEGUARD_BENCH_SCALE=full for the 20k/100k sizes");
    }

    let json = json_for(&reports, cores);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_cluster.json");
    std::fs::write(out, &json).expect("write BENCH_cluster.json");
    eprintln!("cluster/json: wrote {out}");

    // Criterion timing of the warm steady-state slice at the push-CI
    // size, for trend tracking alongside the hard gates above.
    let mut cfg = Config::lan().lifeguard().with_shards(SHARDS);
    cfg.push_pull_interval = None;
    let mut cluster = ClusterBuilder::new(5_000)
        .config(cfg)
        .seed(0x5CA1E)
        .full_mesh(true)
        .build();
    cluster.run_for(QUIESCE);
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("steady_state_100ms/5000", |b| {
        b.iter(|| {
            cluster.run_for(SLICE);
            cluster.telemetry().total().messages()
        })
    });
    group.finish();
}

criterion_group!(benches, cluster_group);
criterion_main!(benches);
