//! `reactor/*`: loopback probe round-trip latency of the two net
//! runtimes, plus poll-syscalls per probe cycle for the reactor.
//!
//! The workload is the failure detector's hottest wire interaction: a
//! peer sends a direct `Ping` to a running [`Agent`]'s UDP port and
//! waits for the `Ack`. On the threaded runtime the reader thread
//! blocks on the socket (arrival-driven); on the reactor the single
//! event loop is woken by poll readiness. Neither path may quantise
//! the round trip — the reactor must be at least as fast with **one**
//! protocol thread instead of four.
//!
//! Hard asserts ride every run (including CI's `--test` smoke mode):
//!
//! * the reactor's median RTT stays within `1.5× + 200 µs` of the
//!   threaded runtime's (slack for scheduler noise on shared CI
//!   hardware — the recorded numbers in `docs/PERFORMANCE.md` §7 show
//!   it comfortably *below* threaded);
//! * the reactor's median RTT is far below the threaded runtime's old
//!   5 ms accept-backoff quantum, proving fixed sleeps are gone from
//!   the probe path;
//! * at a 1000-member loopback fan-out, the batched
//!   (`sendmmsg`/`recvmmsg`) datapath issues at least **4× fewer** UDP
//!   send syscalls per probe round than the single-shot datapath, with
//!   the probe RTT median no worse.
//!
//! Results are recorded in `docs/PERFORMANCE.md` §7–8, and every run
//! writes the machine-readable summary to `target/BENCH_reactor.json`
//! (CI's regression gate reads it).

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use lifeguard_core::config::Config;
use lifeguard_net::agent::{Agent, AgentConfig, IoBatchConfig, Runtime};
use lifeguard_net::transport;
use lifeguard_proto::{
    codec, Incarnation, MemberState, Message, NodeAddr, Ping, PushNodeState, PushPull, SeqNo,
};

/// Probe timing fast enough that the agent's own timers stay busy
/// during the measurement (the realistic case: RTTs are measured on a
/// node that is concurrently probing and gossiping).
fn bench_config() -> Config {
    let mut cfg = Config::lan()
        .lifeguard()
        .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
    cfg.gossip_interval = Duration::from_millis(50);
    cfg
}

struct ProbeHarness {
    agent: Agent,
    peer: UdpSocket,
    peer_addr: NodeAddr,
    buf: Vec<u8>,
    seq: u32,
}

impl ProbeHarness {
    fn start(runtime: Runtime) -> ProbeHarness {
        let agent = Agent::start(
            AgentConfig::local("target")
                .protocol(bench_config())
                .seed(1)
                .runtime(runtime),
        )
        .expect("start agent");
        ProbeHarness::attach(agent)
    }

    /// Wraps an already-running agent in the ping/ack measurement rig.
    fn attach(agent: Agent) -> ProbeHarness {
        let peer = UdpSocket::bind("127.0.0.1:0").expect("bind peer");
        peer.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let peer_addr = NodeAddr::from(peer.local_addr().expect("peer addr"));
        ProbeHarness {
            agent,
            peer,
            peer_addr,
            buf: vec![0u8; 65536],
            seq: 0,
        }
    }

    /// One probe round trip: send `Ping`, block until the matching
    /// `Ack` comes back. Panics if the agent never answers.
    fn round_trip(&mut self) -> Duration {
        self.seq += 1;
        let ping = Message::Ping(Ping {
            seq: SeqNo(self.seq),
            target: self.agent.name(),
            source: "bench-peer".into(),
            source_addr: self.peer_addr,
        });
        let encoded = codec::encode_message(&ping);
        let start = Instant::now();
        self.peer
            .send_to(&encoded, self.agent.addr())
            .expect("send ping");
        loop {
            let (len, _) = self.peer.recv_from(&mut self.buf).expect("ack within 2s");
            if let Ok(Message::Ack(ack)) = codec::decode_message(&self.buf[..len]) {
                if ack.seq == SeqNo(self.seq) {
                    return start.elapsed();
                }
            }
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Fan-out members injected into the hub agent for the batching
/// measurement (the paper-scale cluster the probe round addresses).
const FANOUT_MEMBERS: usize = 1000;
/// Loopback sockets the fake members' addresses map onto (real bound
/// destinations, so sends exercise the full kernel path).
const FANOUT_SINKS: usize = 8;
/// Counter-sampling window for the syscalls-per-probe-round rate.
const FANOUT_WINDOW: Duration = Duration::from_secs(2);
/// Probe interval of [`fanout_config`], for the per-round conversion.
const FANOUT_PROBE_INTERVAL: Duration = Duration::from_millis(200);

/// The fan-out workload config: a wide gossip fan-out (32 targets per
/// 50 ms gossip tick) over fast probe rounds, with the stream paths
/// (push-pull, reconnect, TCP fallback probe) disabled so every wire
/// interaction is a UDP datagram the batched datapath owns.
fn fanout_config() -> Config {
    let mut cfg = Config::lan()
        .lifeguard()
        .with_probe_timing(FANOUT_PROBE_INTERVAL, Duration::from_millis(100));
    cfg.gossip_interval = Duration::from_millis(50);
    cfg.gossip_nodes = 32;
    cfg.push_pull_interval = None;
    cfg.reconnect_interval = None;
    cfg.stream_fallback_probe = false;
    cfg
}

/// One fan-out run's measured rates.
struct FanoutMeasure {
    send_syscalls_per_round: f64,
    packets_per_sec: f64,
    datagrams_per_send_syscall: f64,
    sendmmsg_batches: u64,
    rtt_median: Duration,
}

/// Starts a hub agent with the given batching mode, injects
/// [`FANOUT_MEMBERS`] members (addresses spread over real loopback
/// sink sockets) through one push-pull reply, then samples the
/// per-agent I/O counters over [`FANOUT_WINDOW`] and measures the
/// probe RTT median under the same load.
fn measure_fanout(io_batch: IoBatchConfig, sinks: &[UdpSocket]) -> FanoutMeasure {
    let agent = Agent::start(
        AgentConfig::local("hub")
            .protocol(fanout_config())
            .seed(99)
            .runtime(Runtime::Reactor)
            .io_batch(io_batch),
    )
    .expect("start hub agent");

    // Inject the membership in one shot: a push-pull *reply* merges
    // silently (no counter-reply), exactly as a join answer would.
    let states: Vec<PushNodeState> = (0..FANOUT_MEMBERS)
        .map(|i| PushNodeState {
            name: format!("m{i:04}").into(),
            addr: NodeAddr::from(sinks[i % sinks.len()].local_addr().expect("sink addr")),
            incarnation: Incarnation(1),
            state: MemberState::Alive,
            meta: Bytes::new(),
        })
        .collect();
    let from = NodeAddr::from(sinks[0].local_addr().expect("sink addr"));
    transport::send_stream(
        agent.addr(),
        from,
        &Message::PushPull(PushPull {
            join: false,
            reply: true,
            states,
        }),
    )
    .expect("inject fan-out membership");
    let inject_deadline = Instant::now() + Duration::from_secs(10);
    while agent.num_alive() < FANOUT_MEMBERS && Instant::now() < inject_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        agent.num_alive() >= FANOUT_MEMBERS,
        "membership injection stalled at {} of {FANOUT_MEMBERS}",
        agent.num_alive()
    );

    // Let the probe/gossip cadence reach steady state, then sample.
    std::thread::sleep(Duration::from_millis(500));
    let before = agent.stats();
    let window_start = Instant::now();
    std::thread::sleep(FANOUT_WINDOW);
    let after = agent.stats();
    let elapsed = window_start.elapsed();

    let send_syscalls = after.send_syscalls - before.send_syscalls;
    let datagrams = after.datagrams_sent - before.datagrams_sent;
    let rounds = elapsed.as_secs_f64() / FANOUT_PROBE_INTERVAL.as_secs_f64();

    // Probe RTT under the same fan-out load.
    let mut harness = ProbeHarness::attach(agent);
    for _ in 0..10 {
        harness.round_trip();
    }
    let mut rtt: Vec<Duration> = (0..100).map(|_| harness.round_trip()).collect();
    let rtt_median = median(&mut rtt);
    harness.agent.shutdown();

    FanoutMeasure {
        send_syscalls_per_round: send_syscalls as f64 / rounds,
        packets_per_sec: datagrams as f64 / elapsed.as_secs_f64(),
        datagrams_per_send_syscall: if send_syscalls == 0 {
            0.0
        } else {
            datagrams as f64 / send_syscalls as f64
        },
        sendmmsg_batches: after.sendmmsg_batches - before.sendmmsg_batches,
        rtt_median,
    }
}

fn reactor_group(c: &mut Criterion) {
    // Explicit pre-measurement for the asserts and the syscall count:
    // criterion's own timing loops run afterwards for the reported
    // numbers.
    const WARMUP: usize = 20;
    const SAMPLES: usize = 200;

    let mut threaded = ProbeHarness::start(Runtime::Threaded);
    for _ in 0..WARMUP {
        threaded.round_trip();
    }
    let mut threaded_samples: Vec<Duration> = (0..SAMPLES).map(|_| threaded.round_trip()).collect();
    let threaded_median = median(&mut threaded_samples);

    let mut reactor = ProbeHarness::start(Runtime::Reactor);
    for _ in 0..WARMUP {
        reactor.round_trip();
    }
    let polls_before = polling::stats::polls();
    let syscalls_before = polling::stats::syscalls();
    let mut reactor_samples: Vec<Duration> = (0..SAMPLES).map(|_| reactor.round_trip()).collect();
    let polls = polling::stats::polls() - polls_before;
    let syscalls = polling::stats::syscalls() - syscalls_before;
    let reactor_median = median(&mut reactor_samples);

    eprintln!(
        "reactor/rtt: threaded median {threaded_median:?}, reactor median {reactor_median:?}, \
         reactor poll syscalls/probe {:.2} (total shim syscalls/probe {:.2})",
        polls as f64 / SAMPLES as f64,
        syscalls as f64 / SAMPLES as f64,
    );

    // The headline latency gate: one reactor thread must not be slower
    // than four threaded ones (modulo CI scheduler noise).
    assert!(
        reactor_median <= threaded_median.mul_f64(1.5) + Duration::from_micros(200),
        "reactor probe RTT regressed: reactor {reactor_median:?} vs threaded {threaded_median:?}"
    );
    // And nothing on the probe path may sleep-quantise: the old accept
    // backoff was 5 ms, the ticker floor 1 ms — a readiness wakeup is
    // orders of magnitude below either.
    assert!(
        reactor_median < Duration::from_millis(1),
        "reactor probe RTT {reactor_median:?} suggests a fixed-interval sleep on the wire path"
    );
    // The loop must wake a bounded number of times per probe (readiness
    // + its own timers), not busy-poll.
    assert!(
        (polls as f64 / SAMPLES as f64) < 16.0,
        "reactor issued {polls} polls over {SAMPLES} probes — busy loop?"
    );

    // The batching gate: a 1000-member fan-out drives wide gossip
    // bursts through both datapaths; the sendmmsg one must collapse
    // the per-packet syscalls by at least 4× without costing probe
    // latency.
    let sinks: Vec<UdpSocket> = (0..FANOUT_SINKS)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind sink"))
        .collect();
    let unbatched = measure_fanout(IoBatchConfig::single_shot(), &sinks);
    let batched = measure_fanout(IoBatchConfig::default(), &sinks);
    let reduction = unbatched.send_syscalls_per_round / batched.send_syscalls_per_round.max(1e-9);
    eprintln!(
        "reactor/fanout ({FANOUT_MEMBERS} members): unbatched {:.1} send syscalls/round \
         ({:.0} pkts/s), batched {:.1} send syscalls/round ({:.0} pkts/s, {:.1} datagrams/syscall) \
         — {reduction:.1}× reduction; RTT median unbatched {:?} vs batched {:?}",
        unbatched.send_syscalls_per_round,
        unbatched.packets_per_sec,
        batched.send_syscalls_per_round,
        batched.packets_per_sec,
        batched.datagrams_per_send_syscall,
        unbatched.rtt_median,
        batched.rtt_median,
    );
    assert!(
        batched.sendmmsg_batches > 0,
        "batched run never issued a multi-datagram sendmmsg — batching is not engaging"
    );
    assert!(
        reduction >= 4.0,
        "sendmmsg batching must cut UDP send syscalls per probe round by ≥4×: \
         unbatched {:.1}/round vs batched {:.1}/round ({reduction:.1}×)",
        unbatched.send_syscalls_per_round,
        batched.send_syscalls_per_round,
    );
    assert!(
        batched.rtt_median <= unbatched.rtt_median.mul_f64(1.5) + Duration::from_micros(200),
        "batching must not cost probe latency: batched {:?} vs unbatched {:?}",
        batched.rtt_median,
        unbatched.rtt_median,
    );

    let mut group = c.benchmark_group("reactor");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("probe_rtt_threaded", |b| b.iter(|| threaded.round_trip()));
    group.bench_function("probe_rtt_reactor", |b| b.iter(|| reactor.round_trip()));
    group.finish();

    // Idle wakeups: with the threaded agent gone, the only poller left
    // is the reactor's — its wakeup rate is exactly the protocol timer
    // rate (the threaded layout burns ~350 wakeups/s across its four
    // loops' shutdown-poll timeouts regardless of protocol activity).
    threaded.agent.shutdown();
    let idle_window = Duration::from_millis(500);
    let polls_before = polling::stats::polls();
    std::thread::sleep(idle_window);
    let idle_polls = polling::stats::polls() - polls_before;
    let idle_rate = idle_polls as f64 / idle_window.as_secs_f64();
    eprintln!("reactor/idle: {idle_rate:.0} poll wakeups/s (timer-driven only)");
    assert!(
        idle_rate < 200.0,
        "idle reactor woke {idle_rate:.0}×/s — it must sleep to the next deadline, not spin"
    );

    reactor.agent.shutdown();

    // Machine-readable summary for CI's regression gate and for
    // `docs/PERFORMANCE.md`. Written into the workspace `target/` dir
    // regardless of the bench binary's working directory.
    let json = format!(
        "{{\n  \"bench\": \"reactor\",\n  \"fanout_members\": {FANOUT_MEMBERS},\n  \
         \"probe_interval_ms\": {},\n  \"window_secs\": {},\n  \"unbatched\": {{\n    \
         \"send_syscalls_per_probe_round\": {:.2},\n    \"packets_per_sec\": {:.0},\n    \
         \"datagrams_per_send_syscall\": {:.2},\n    \"rtt_median_us\": {:.1}\n  }},\n  \
         \"batched\": {{\n    \"send_syscalls_per_probe_round\": {:.2},\n    \
         \"packets_per_sec\": {:.0},\n    \"datagrams_per_send_syscall\": {:.2},\n    \
         \"sendmmsg_batches\": {},\n    \"rtt_median_us\": {:.1}\n  }},\n  \
         \"syscall_reduction_factor\": {:.2},\n  \"rtt_threaded_us\": {:.1},\n  \
         \"rtt_reactor_us\": {:.1},\n  \"polls_per_probe\": {:.2},\n  \
         \"idle_wakeups_per_sec\": {:.0}\n}}\n",
        FANOUT_PROBE_INTERVAL.as_millis(),
        FANOUT_WINDOW.as_secs(),
        unbatched.send_syscalls_per_round,
        unbatched.packets_per_sec,
        unbatched.datagrams_per_send_syscall,
        unbatched.rtt_median.as_secs_f64() * 1e6,
        batched.send_syscalls_per_round,
        batched.packets_per_sec,
        batched.datagrams_per_send_syscall,
        batched.sendmmsg_batches,
        batched.rtt_median.as_secs_f64() * 1e6,
        reduction,
        threaded_median.as_secs_f64() * 1e6,
        reactor_median.as_secs_f64() * 1e6,
        polls as f64 / SAMPLES as f64,
        idle_rate,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_reactor.json");
    std::fs::write(out, json).expect("write BENCH_reactor.json");
    eprintln!("reactor/json: wrote {out}");
}

criterion_group!(benches, reactor_group);
criterion_main!(benches);
