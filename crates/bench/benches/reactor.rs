//! `reactor/*`: loopback probe round-trip latency of the two net
//! runtimes, plus poll-syscalls per probe cycle for the reactor.
//!
//! The workload is the failure detector's hottest wire interaction: a
//! peer sends a direct `Ping` to a running [`Agent`]'s UDP port and
//! waits for the `Ack`. On the threaded runtime the reader thread
//! blocks on the socket (arrival-driven); on the reactor the single
//! event loop is woken by poll readiness. Neither path may quantise
//! the round trip — the reactor must be at least as fast with **one**
//! protocol thread instead of four.
//!
//! Two hard asserts ride every run (including CI's `--test` smoke
//! mode):
//!
//! * the reactor's median RTT stays within `1.5× + 200 µs` of the
//!   threaded runtime's (slack for scheduler noise on shared CI
//!   hardware — the recorded numbers in `docs/PERFORMANCE.md` §7 show
//!   it comfortably *below* threaded);
//! * the reactor's median RTT is far below the threaded runtime's old
//!   5 ms accept-backoff quantum, proving fixed sleeps are gone from
//!   the probe path.
//!
//! Results are recorded in `docs/PERFORMANCE.md` §7.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use lifeguard_core::config::Config;
use lifeguard_net::agent::{Agent, AgentConfig, Runtime};
use lifeguard_proto::{codec, Message, NodeAddr, Ping, SeqNo};

/// Probe timing fast enough that the agent's own timers stay busy
/// during the measurement (the realistic case: RTTs are measured on a
/// node that is concurrently probing and gossiping).
fn bench_config() -> Config {
    let mut cfg = Config::lan()
        .lifeguard()
        .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
    cfg.gossip_interval = Duration::from_millis(50);
    cfg
}

struct ProbeHarness {
    agent: Agent,
    peer: UdpSocket,
    peer_addr: NodeAddr,
    buf: Vec<u8>,
    seq: u32,
}

impl ProbeHarness {
    fn start(runtime: Runtime) -> ProbeHarness {
        let agent = Agent::start(
            AgentConfig::local("target")
                .protocol(bench_config())
                .seed(1)
                .runtime(runtime),
        )
        .expect("start agent");
        let peer = UdpSocket::bind("127.0.0.1:0").expect("bind peer");
        peer.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let peer_addr = NodeAddr::from(peer.local_addr().expect("peer addr"));
        ProbeHarness {
            agent,
            peer,
            peer_addr,
            buf: vec![0u8; 65536],
            seq: 0,
        }
    }

    /// One probe round trip: send `Ping`, block until the matching
    /// `Ack` comes back. Panics if the agent never answers.
    fn round_trip(&mut self) -> Duration {
        self.seq += 1;
        let ping = Message::Ping(Ping {
            seq: SeqNo(self.seq),
            target: self.agent.name(),
            source: "bench-peer".into(),
            source_addr: self.peer_addr,
        });
        let encoded = codec::encode_message(&ping);
        let start = Instant::now();
        self.peer
            .send_to(&encoded, self.agent.addr())
            .expect("send ping");
        loop {
            let (len, _) = self.peer.recv_from(&mut self.buf).expect("ack within 2s");
            if let Ok(Message::Ack(ack)) = codec::decode_message(&self.buf[..len]) {
                if ack.seq == SeqNo(self.seq) {
                    return start.elapsed();
                }
            }
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn reactor_group(c: &mut Criterion) {
    // Explicit pre-measurement for the asserts and the syscall count:
    // criterion's own timing loops run afterwards for the reported
    // numbers.
    const WARMUP: usize = 20;
    const SAMPLES: usize = 200;

    let mut threaded = ProbeHarness::start(Runtime::Threaded);
    for _ in 0..WARMUP {
        threaded.round_trip();
    }
    let mut threaded_samples: Vec<Duration> = (0..SAMPLES).map(|_| threaded.round_trip()).collect();
    let threaded_median = median(&mut threaded_samples);

    let mut reactor = ProbeHarness::start(Runtime::Reactor);
    for _ in 0..WARMUP {
        reactor.round_trip();
    }
    let polls_before = polling::stats::polls();
    let syscalls_before = polling::stats::syscalls();
    let mut reactor_samples: Vec<Duration> = (0..SAMPLES).map(|_| reactor.round_trip()).collect();
    let polls = polling::stats::polls() - polls_before;
    let syscalls = polling::stats::syscalls() - syscalls_before;
    let reactor_median = median(&mut reactor_samples);

    eprintln!(
        "reactor/rtt: threaded median {threaded_median:?}, reactor median {reactor_median:?}, \
         reactor poll syscalls/probe {:.2} (total shim syscalls/probe {:.2})",
        polls as f64 / SAMPLES as f64,
        syscalls as f64 / SAMPLES as f64,
    );

    // The headline latency gate: one reactor thread must not be slower
    // than four threaded ones (modulo CI scheduler noise).
    assert!(
        reactor_median <= threaded_median.mul_f64(1.5) + Duration::from_micros(200),
        "reactor probe RTT regressed: reactor {reactor_median:?} vs threaded {threaded_median:?}"
    );
    // And nothing on the probe path may sleep-quantise: the old accept
    // backoff was 5 ms, the ticker floor 1 ms — a readiness wakeup is
    // orders of magnitude below either.
    assert!(
        reactor_median < Duration::from_millis(1),
        "reactor probe RTT {reactor_median:?} suggests a fixed-interval sleep on the wire path"
    );
    // The loop must wake a bounded number of times per probe (readiness
    // + its own timers), not busy-poll.
    assert!(
        (polls as f64 / SAMPLES as f64) < 16.0,
        "reactor issued {polls} polls over {SAMPLES} probes — busy loop?"
    );

    let mut group = c.benchmark_group("reactor");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("probe_rtt_threaded", |b| b.iter(|| threaded.round_trip()));
    group.bench_function("probe_rtt_reactor", |b| b.iter(|| reactor.round_trip()));
    group.finish();

    // Idle wakeups: with the threaded agent gone, the only poller left
    // is the reactor's — its wakeup rate is exactly the protocol timer
    // rate (the threaded layout burns ~350 wakeups/s across its four
    // loops' shutdown-poll timeouts regardless of protocol activity).
    threaded.agent.shutdown();
    let idle_window = Duration::from_millis(500);
    let polls_before = polling::stats::polls();
    std::thread::sleep(idle_window);
    let idle_polls = polling::stats::polls() - polls_before;
    let idle_rate = idle_polls as f64 / idle_window.as_secs_f64();
    eprintln!("reactor/idle: {idle_rate:.0} poll wakeups/s (timer-driven only)");
    assert!(
        idle_rate < 200.0,
        "idle reactor woke {idle_rate:.0}×/s — it must sleep to the next deadline, not spin"
    );

    reactor.agent.shutdown();
}

criterion_group!(benches, reactor_group);
criterion_main!(benches);
