//! Table VII (bench-scale): the α/β tuning trade-off. Lower α reduces
//! detection latency but admits more false positives.
//!
//! Prints the observed median detection latency and FP count for the
//! extreme tunings; `lifeguard-repro table7` regenerates the full
//! 9-column table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifeguard_bench::{bench_interval, bench_threshold};
use lifeguard_core::config::Config;

const COMBOS: [(f64, f64); 3] = [(2.0, 2.0), (4.0, 4.0), (5.0, 6.0)];

fn table7(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_tuning");
    group.sample_size(10);
    for (alpha, beta) in COMBOS {
        let config = Config::lan().lifeguard().with_alpha(alpha).with_beta(beta);
        let thresh = bench_threshold(3, config.clone(), 42);
        let interval = bench_interval(6, config.clone(), 42);
        let med = {
            let mut secs: Vec<f64> = thresh
                .first_detect
                .iter()
                .flatten()
                .map(|d| d.as_secs_f64())
                .collect();
            secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            secs.get(secs.len() / 2).copied()
        };
        println!(
            "table7[a={alpha} b={beta}]: median detect={med:?} FP={}",
            interval.fp_events
        );
        let id = format!("a{alpha}_b{beta}");
        group.bench_with_input(BenchmarkId::new("run", id), &config, |b, config| {
            let mut seed = 300u64;
            b.iter(|| {
                seed += 1;
                bench_interval(6, config.clone(), seed).fp_events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table7);
criterion_main!(benches);
