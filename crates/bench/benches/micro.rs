//! Micro-benchmarks of the protocol core's hot paths: wire codec,
//! compound packing, gossip queue, suspicion math, membership sampling,
//! and raw simulator throughput.
//!
//! The `membership/*` and `broadcast/*` groups benchmark the indexed
//! structures against the checked-in naive (seed-design) baselines in
//! [`lifeguard_bench::naive`] at n ∈ {100, 1k, 10k}; see
//! `docs/PERFORMANCE.md` for recorded results.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use lifeguard_bench::naive::{NaiveBroadcastQueue, NaiveMembership, NaiveTimerHeap};
use lifeguard_core::broadcast::BroadcastQueue;
use lifeguard_core::config::Config;
use lifeguard_core::member::Member;
use lifeguard_core::membership::{Membership, SamplePool};
use lifeguard_core::suspicion::suspicion_timeout;
use lifeguard_core::time::Time;
use lifeguard_core::timer_wheel::TimerWheel;
use lifeguard_proto::compound::{decode_packet, CompoundBuilder};
use lifeguard_proto::{
    codec, Alive, Incarnation, MemberState, Message, NodeAddr, NodeName, Ping, SeqNo, Suspect,
};
use lifeguard_sim::cluster::{ClusterBuilder, SimAction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cluster sizes for the indexed-vs-naive comparisons.
const SCALES: [usize; 3] = [100, 1_000, 10_000];

fn sample_ping() -> Message {
    Message::Ping(Ping {
        seq: SeqNo(42),
        target: "node-17".into(),
        source: "node-3".into(),
        source_addr: NodeAddr::new([10, 0, 0, 3], 7946),
    })
}

fn sample_alive(i: u64) -> Message {
    Message::Alive(Alive {
        incarnation: Incarnation(i),
        node: format!("node-{i}").into(),
        addr: NodeAddr::new([10, 0, (i >> 8) as u8, (i & 0xff) as u8], 7946),
        meta: Bytes::new(),
    })
}

fn bench_codec(c: &mut Criterion) {
    let msg = sample_ping();
    let encoded = codec::encode_message(&msg);
    c.bench_function("codec/encode_ping", |b| {
        b.iter(|| codec::encode_message(black_box(&msg)))
    });
    c.bench_function("codec/decode_ping", |b| {
        b.iter(|| codec::decode_message(black_box(&encoded)).unwrap())
    });
    c.bench_function("codec/encoded_len_ping", |b| {
        b.iter(|| codec::encoded_len(black_box(&msg)))
    });
}

fn bench_compound(c: &mut Criterion) {
    let parts: Vec<Bytes> = (0..30)
        .map(|i| codec::encode_message(&sample_alive(i)))
        .collect();
    c.bench_function("compound/pack_30_messages", |b| {
        b.iter(|| {
            let mut builder = CompoundBuilder::new(1400);
            for p in &parts {
                builder.try_add(p.clone());
            }
            builder.finish().unwrap()
        })
    });
    let mut builder = CompoundBuilder::new(1400);
    for p in &parts {
        builder.try_add(p.clone());
    }
    let packet = builder.finish().unwrap();
    c.bench_function("compound/decode_30_messages", |b| {
        b.iter(|| decode_packet(black_box(&packet)).unwrap())
    });
}

fn bench_broadcast_queue(c: &mut Criterion) {
    c.bench_function("broadcast/enqueue_fill_64", |b| {
        b.iter_batched(
            || {
                let mut q = BroadcastQueue::new();
                for i in 0..64 {
                    q.enqueue(sample_alive(i));
                }
                q
            },
            |mut q| {
                let mut builder = CompoundBuilder::new(1400);
                q.fill(&mut builder, 12, None);
                builder.finish()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("broadcast/invalidate_same_subject", |b| {
        b.iter_batched(
            BroadcastQueue::new,
            |mut q| {
                for rep in 0..8 {
                    for i in 0..16 {
                        q.enqueue(sample_alive(i * 1000 + rep));
                    }
                }
                q.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_suspicion_math(c: &mut Criterion) {
    let min = Duration::from_secs(10);
    let max = Duration::from_secs(60);
    c.bench_function("suspicion/timeout_formula", |b| {
        b.iter(|| {
            let mut total = Duration::ZERO;
            for conf in 0..4 {
                total += suspicion_timeout(black_box(conf), 3, min, max);
            }
            total
        })
    });
}

fn member(i: usize) -> Member {
    Member::new(
        format!("node-{i}").into(),
        NodeAddr::new([10, (i >> 16) as u8, (i >> 8) as u8, i as u8], 7946),
        Incarnation(0),
        Time::ZERO,
    )
}

/// Shared population mix for the indexed-vs-naive comparison: 2% dead,
/// every remaining tenth suspect, rest alive — a realistic mixed-state
/// steady state. Keeping this in one place keeps the comparison fair.
fn state_for(i: usize) -> MemberState {
    if i.is_multiple_of(50) {
        MemberState::Dead
    } else if i.is_multiple_of(10) {
        MemberState::Suspect
    } else {
        MemberState::Alive
    }
}

fn indexed_table(n: usize) -> Membership {
    let mut t = Membership::new();
    for i in 0..n {
        let name = member(i).name.clone();
        t.upsert(member(i));
        t.set_state(&name, state_for(i), Time::from_secs(1));
    }
    t
}

/// The same population in the seed's `BTreeMap` design.
fn naive_table(n: usize) -> NaiveMembership {
    let mut t = NaiveMembership::new();
    for i in 0..n {
        let name = member(i).name.clone();
        t.upsert(member(i));
        t.set_state(&name, state_for(i), Time::from_secs(1));
    }
    t
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    for n in SCALES {
        let indexed = indexed_table(n);
        let naive = naive_table(n);

        // live_count: charged on every suspicion start and every
        // transmit-limit evaluation — O(1) vs O(n).
        group.bench_with_input(BenchmarkId::new("live_count/indexed", n), &n, |b, _| {
            b.iter(|| black_box(&indexed).live_count())
        });
        group.bench_with_input(BenchmarkId::new("live_count/naive", n), &n, |b, _| {
            b.iter(|| black_box(&naive).live_count())
        });

        // Indirect-probe sampling: 3 live peers excluding self/target —
        // O(k) lazy Fisher–Yates vs O(n) filter-collect.
        let me = format!("node-{}", 1).into();
        let target = format!("node-{}", 2).into();
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("sample3_live/indexed", n), &n, |b, _| {
            b.iter(|| {
                indexed
                    .sample_pool(SamplePool::Live, 3, &mut rng, |m| {
                        m.name != me && m.name != target
                    })
                    .len()
            })
        });
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("sample3_live/naive", n), &n, |b, _| {
            b.iter(|| {
                naive
                    .sample(3, &mut rng, |m| {
                        m.is_live() && m.name != me && m.name != target
                    })
                    .len()
            })
        });
    }
    group.finish();

    // Seed-era smoke bench kept for BENCH-trajectory continuity.
    let table = indexed_table(128);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("membership/sample_3_of_128", |b| {
        b.iter(|| table.sample(3, &mut rng, |_| true).len())
    });
}

fn bench_broadcast_scaled(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_scaled");
    for n in SCALES {
        // Enqueue churn: 64 re-enqueues (each invalidating the subject's
        // queued broadcast) into a queue already holding n subjects —
        // O(1) amortized vs O(n) retain per enqueue.
        group.bench_with_input(
            BenchmarkId::new("enqueue_invalidate/indexed", n),
            &n,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut q = BroadcastQueue::new();
                        for i in 0..n as u64 {
                            q.enqueue(sample_alive(i));
                        }
                        q
                    },
                    |mut q| {
                        for i in 0..64u64 {
                            q.enqueue(sample_alive(i * (n as u64 / 64).max(1)));
                        }
                        q
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("enqueue_invalidate/naive", n),
            &n,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut q = NaiveBroadcastQueue::new();
                        for i in 0..n as u64 {
                            q.enqueue(sample_alive(i));
                        }
                        q
                    },
                    |mut q| {
                        for i in 0..64u64 {
                            q.enqueue(sample_alive(i * (n as u64 / 64).max(1)));
                        }
                        q
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // Per-packet selection from a deep queue: O(selected) pops vs a
        // full O(n log n) sort + O(n) retain per packet.
        group.bench_with_input(BenchmarkId::new("fill_packet/indexed", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut q = BroadcastQueue::new();
                    for i in 0..n as u64 {
                        q.enqueue(sample_alive(i));
                    }
                    q
                },
                |mut q| {
                    let mut builder = CompoundBuilder::new(1400);
                    q.fill(&mut builder, 12, None);
                    (q, builder.finish())
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("fill_packet/naive", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut q = NaiveBroadcastQueue::new();
                    for i in 0..n as u64 {
                        q.enqueue(sample_alive(i));
                    }
                    q
                },
                |mut q| {
                    let mut builder = CompoundBuilder::new(1400);
                    q.fill(&mut builder, 12, None);
                    (q, builder.finish())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_cluster_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    // Steady-state protocol throughput at scale: full-mesh bootstrap
    // (no join flood), then advance simulated time in 100 ms slices.
    // Per-slice work is ~n/10 probe round-trips plus gossip/timer
    // machinery — the per-tick hot paths this PR restructured.
    for n in [1_000usize, 5_000] {
        let mut cluster = ClusterBuilder::new(n)
            .config(Config::lan().lifeguard())
            .seed(11)
            .full_mesh(true)
            .build();
        group.bench_with_input(
            BenchmarkId::new("steady_state_100ms", n),
            &n,
            |b, _| {
                b.iter(|| {
                    cluster.run_for(Duration::from_millis(100));
                    cluster.telemetry().total().messages()
                })
            },
        );
    }
    group.finish();
}

/// Anti-entropy wire cost at scale: bytes sent per push-pull round,
/// full-state vs delta sync, under ≤ 1% churn per round — the
/// PERFORMANCE.md §6 table. Doubles as a regression gate: the run
/// asserts the delta rounds stay at ≤ 10% of the full-state rounds
/// (5k-node version of the `delta_push_pull_cuts_steady_state_sync_bytes_by_10x`
/// integration test), then benches the latency of one warm delta round.
fn bench_push_pull(c: &mut Criterion) {
    const ROUND: Duration = Duration::from_secs(2);

    fn cluster_at(n: usize, delta: bool) -> lifeguard_sim::cluster::Cluster {
        let mut cfg = Config::lan().lifeguard();
        cfg.push_pull_interval = Some(ROUND);
        cfg.delta_sync = delta;
        let mut cluster = ClusterBuilder::new(n)
            .config(cfg)
            .seed(23)
            .full_mesh(true)
            .build();
        // Warm-up: enough rounds for every node to accumulate its warm
        // delta partners (a no-op for the full-state configuration).
        cluster.run_for(Duration::from_secs(8));
        cluster
    }

    fn churned_rounds(cluster: &mut lifeguard_sim::cluster::Cluster, rounds: u64) -> u64 {
        let n = cluster.len();
        let start = cluster.telemetry().total().stream_bytes;
        for r in 0..rounds {
            for k in 0..n / 100 {
                // ≤ 1% churn per round via metadata updates: real
                // membership changes, no failure-detector cascades.
                let node = (r as usize * 131 + k * 37) % n;
                cluster.apply(SimAction::UpdateMeta {
                    node,
                    meta: Bytes::from(format!("gen-{r}-{k}").into_bytes()),
                });
            }
            cluster.run_for(ROUND);
        }
        assert!(cluster.converged(), "cluster must stay converged");
        (cluster.telemetry().total().stream_bytes - start) / rounds
    }

    let mut group = c.benchmark_group("push_pull");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let full = churned_rounds(&mut cluster_at(n, false), 2);
        let mut delta_cluster = cluster_at(n, true);
        let delta = churned_rounds(&mut delta_cluster, 2);
        println!(
            "push_pull wire bytes/round at n={n}, <=1% churn: \
             full {full} B, delta {delta} B ({:.2}% of full)",
            delta as f64 / full as f64 * 100.0
        );
        assert!(
            delta * 10 <= full,
            "delta sync must stay at <= 10% of full-state wire bytes \
             (n={n}: delta {delta} B/round vs full {full} B/round)"
        );
        // Latency of warm, churn-free delta rounds at this scale.
        group.bench_with_input(BenchmarkId::new("delta_round", n), &n, |b, _| {
            b.iter(|| {
                delta_cluster.run_for(ROUND);
                delta_cluster.telemetry().total().stream_bytes
            })
        });
    }
    group.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.bench_function("32_nodes_30s_sim", |b| {
        b.iter(|| {
            let mut cluster = ClusterBuilder::new(32)
                .config(Config::lan().lifeguard())
                .seed(9)
                .build();
            cluster.run_for(Duration::from_secs(30));
            cluster.telemetry().total().messages()
        })
    });
    // Suspicion churn: pause one node and measure the whole cascade.
    group.bench_function("suspect_storm_one_node", |b| {
        b.iter_batched(
            || {
                let mut cluster = ClusterBuilder::new(8).config(Config::lan()).seed(3).build();
                cluster.run_for(Duration::from_secs(12));
                cluster
            },
            |mut cluster| {
                cluster.apply(lifeguard_sim::cluster::SimAction::Pause {
                    node: 3,
                    duration: Duration::from_secs(4),
                });
                cluster.run_for(Duration::from_secs(8));
                cluster.trace().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_node_message_handling(c: &mut Criterion) {
    use lifeguard_core::node::{Input, SwimNode};
    // Pre-encoded datagrams: the bench measures the node's decode +
    // handle + poll cycle, not the test harness's encoding.
    let from = NodeAddr::new([10, 0, 0, 2], 7946);
    let alives: Vec<Bytes> = (0..500u64)
        .map(|i| codec::encode_message(&sample_alive(i)))
        .collect();
    let suspects: Vec<Bytes> = (0..500u64)
        .map(|i| {
            codec::encode_message(&Message::Suspect(Suspect {
                incarnation: Incarnation(i),
                node: format!("node-{i}").into(),
                from: "accuser".into(),
            }))
        })
        .collect();
    c.bench_function("node/handle_1000_gossip_messages", |b| {
        b.iter_batched(
            || {
                let mut node = SwimNode::new(
                    "local".into(),
                    NodeAddr::new([10, 0, 0, 1], 7946),
                    Config::lan().lifeguard(),
                    1,
                );
                node.start(Time::ZERO);
                node
            },
            |mut node| {
                for (i, payload) in alives.iter().enumerate() {
                    node.handle_input(
                        Input::Datagram {
                            from,
                            payload: payload.clone(),
                        },
                        Time::from_millis(i as u64),
                    )
                    .unwrap();
                    while node.poll_output().is_some() {}
                }
                for (i, payload) in suspects.iter().enumerate() {
                    node.handle_input(
                        Input::Datagram {
                            from,
                            payload: payload.clone(),
                        },
                        Time::from_millis(500 + i as u64),
                    )
                    .unwrap();
                    while node.poll_output().is_some() {}
                }
                node.num_alive()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Wheel-vs-heap timer benches at 10k-node scale: the per-node timer mix
/// is ~1 probe-round + probe deadlines + suspicion expiries, so a 10k
/// cluster keeps ~10k timers armed. Deadlines mirror the protocol's:
/// probe machinery inside one second, suspicions at 5–30 s.
fn timer_population(i: u64) -> Time {
    match i % 4 {
        // Probe rounds / timeouts: spread over the next second.
        0 | 1 => Time::from_micros(1 + (i * 997) % 1_000_000),
        // Gossip-scale: spread over 200 ms.
        2 => Time::from_micros(1 + (i * 131) % 200_000),
        // Suspicion expiries: 5–30 s out.
        _ => Time::from_micros(5_000_000 + (i * 7919) % 25_000_000),
    }
}

fn bench_timers(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer");
    const N: u64 = 10_000;

    // Arm 10k timers from scratch.
    group.bench_function(BenchmarkId::new("schedule", "10k_wheel"), |b| {
        b.iter(|| {
            let mut w = TimerWheel::new();
            for i in 0..N {
                w.schedule(timer_population(i), i);
            }
            w.len()
        })
    });
    group.bench_function(BenchmarkId::new("schedule", "10k_heap"), |b| {
        b.iter(|| {
            let mut h = NaiveTimerHeap::new();
            for i in 0..N {
                h.schedule(timer_population(i), i);
            }
            h.len()
        })
    });

    // True cancellation vs tombstoning: arm 10k, cancel half (every ack
    // cancels a probe deadline; every refutation cancels a suspicion).
    group.bench_function(BenchmarkId::new("cancel_half", "10k_wheel"), |b| {
        b.iter_batched(
            || {
                let mut w = TimerWheel::new();
                let keys: Vec<_> = (0..N).map(|i| w.schedule(timer_population(i), i)).collect();
                (w, keys)
            },
            |(mut w, keys)| {
                for k in keys.into_iter().step_by(2) {
                    w.cancel(k);
                }
                w.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new("cancel_half", "10k_heap"), |b| {
        b.iter_batched(
            || {
                let mut h = NaiveTimerHeap::new();
                let ids: Vec<_> = (0..N).map(|i| h.schedule(timer_population(i), i)).collect();
                (h, ids)
            },
            |(mut h, ids)| {
                for id in ids.into_iter().step_by(2) {
                    h.cancel(id);
                }
                h.len()
            },
            BatchSize::SmallInput,
        )
    });

    // Lifeguard's suspicion shrinking: every confirmation moves a
    // deadline earlier. The wheel relinks in place; the heap leaves a
    // tombstone per move and pays for them at pop time.
    group.bench_function(BenchmarkId::new("reschedule_churn", "10k_wheel"), |b| {
        b.iter_batched(
            || {
                let mut w = TimerWheel::new();
                let keys: Vec<_> = (0..N).map(|i| w.schedule(timer_population(i), i)).collect();
                (w, keys)
            },
            |(mut w, mut keys)| {
                for round in 1..=3u64 {
                    for (i, k) in keys.iter_mut().enumerate() {
                        let at = Time::from_micros(1 + (i as u64 * 31 + round * 1000) % 5_000_000);
                        *k = w.reschedule(*k, at).unwrap();
                    }
                }
                let mut fired = 0u64;
                while w.pop_due(Time::from_secs(40)).is_some() {
                    fired += 1;
                }
                fired
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new("reschedule_churn", "10k_heap"), |b| {
        b.iter_batched(
            || {
                let mut h = NaiveTimerHeap::new();
                let ids: Vec<_> = (0..N).map(|i| h.schedule(timer_population(i), i)).collect();
                (h, ids)
            },
            |(mut h, mut ids)| {
                for round in 1..=3u64 {
                    for (i, id) in ids.iter_mut().enumerate() {
                        let at = Time::from_micros(1 + (i as u64 * 31 + round * 1000) % 5_000_000);
                        *id = h.reschedule(*id, at).unwrap();
                    }
                }
                let mut fired = 0u64;
                while h.pop_due(Time::from_secs(40)).is_some() {
                    fired += 1;
                }
                fired
            },
            BatchSize::SmallInput,
        )
    });

    // Steady-state tick at 10k armed timers: advance in 1 ms slices,
    // firing the ~10 due timers per slice and re-arming each one
    // protocol-period later — the 10k-node cluster's per-tick cost.
    group.bench_function(BenchmarkId::new("tick_steady_state", "10k_wheel"), |b| {
        let mut w = TimerWheel::new();
        for i in 0..N {
            w.schedule(timer_population(i), i);
        }
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_millis(1);
            let mut fired = 0u64;
            while let Some((_, t)) = w.pop_due(now) {
                w.schedule(now + Duration::from_secs(1), t);
                fired += 1;
            }
            fired
        })
    });
    group.bench_function(BenchmarkId::new("tick_steady_state", "10k_heap"), |b| {
        let mut h = NaiveTimerHeap::new();
        for i in 0..N {
            h.schedule(timer_population(i), i);
        }
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_millis(1);
            let mut fired = 0u64;
            while let Some((_, t)) = h.pop_due(now) {
                h.schedule(now + Duration::from_secs(1), t);
                fired += 1;
            }
            fired
        })
    });

    // Idle wake-up probing: `next_wake`/`next_deadline` is read on every
    // runtime loop iteration of every node.
    group.bench_function(BenchmarkId::new("next_deadline", "10k_wheel"), |b| {
        let mut w = TimerWheel::new();
        for i in 0..N {
            w.schedule(timer_population(i), i);
        }
        b.iter(|| black_box(&w).next_deadline())
    });
    group.bench_function(BenchmarkId::new("next_deadline", "10k_heap"), |b| {
        let mut h = NaiveTimerHeap::new();
        for i in 0..N {
            h.schedule(timer_population(i), i);
        }
        b.iter(|| h.next_deadline())
    });

    group.finish();
}

/// One `SwimNode` carrying a 10k-member table: drive its real timer
/// machinery (probe rounds, gossip ticks, reaping) through simulated
/// time — the node-level cost the wheel migration targets.
fn bench_node_tick_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_tick");
    group.sample_size(10);
    let mut node = {
        let mut n = lifeguard_core::node::SwimNode::new(
            "local".into(),
            NodeAddr::new([10, 0, 0, 1], 7946),
            Config::lan().lifeguard(),
            7,
        );
        n.start(Time::ZERO);
        let peers = (0..10_000u32).map(|i| {
            (
                NodeName::from(format!("peer-{i}").as_str()),
                NodeAddr::new([10, 1, (i >> 8) as u8, (i & 0xff) as u8], 7946),
            )
        });
        n.bootstrap_peers(peers, Time::ZERO);
        n
    };
    let mut now = Time::ZERO;
    group.bench_function("10k_members_100ms", |b| {
        b.iter(|| {
            now += Duration::from_millis(100);
            let mut outputs = 0usize;
            while let Some(wake) = node.next_wake() {
                if wake > now {
                    break;
                }
                node.handle_input(lifeguard_core::node::Input::Tick, wake)
                    .unwrap();
                while node.poll_output().is_some() {
                    outputs += 1;
                }
            }
            outputs
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_compound,
    bench_broadcast_queue,
    bench_broadcast_scaled,
    bench_suspicion_math,
    bench_membership,
    bench_timers,
    bench_node_tick_10k,
    bench_sim_throughput,
    bench_cluster_throughput,
    bench_push_pull,
    bench_node_message_handling
);
criterion_main!(benches);
