//! Benchmarks of the sans-I/O driving surface (`handle_input` /
//! `poll_output`) against the seed's `Vec<Output>` collection shape
//! (kept in [`lifeguard_bench::naive::collect_outputs_vec`]), plus an
//! allocation-count proof that draining the output queue performs
//! **zero allocations per poll** in steady state.
//!
//! The workload is a 1000-member node in steady state: every cycle one
//! gossip message arrives (keeping the broadcast queue non-empty),
//! simulated time advances one gossip interval, the due timers fire
//! (gossip fan-out → up to `gossip_nodes` packets, periodic probe
//! rounds), and the queued outputs are drained. The poll path hands
//! each packet out as a borrow of the node's scratch buffer; the
//! baseline materialises the seed's fresh `Vec` + owned `Bytes` per
//! packet.
//!
//! Results are recorded in `docs/PERFORMANCE.md` §5.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bytes::Bytes;
use lifeguard_bench::naive::collect_outputs_vec;
use lifeguard_core::config::Config;
use lifeguard_core::node::{Input, Output, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{codec, Alive, Incarnation, Message, NodeAddr, NodeName};

/// A pass-through allocator that counts allocations while the flag is
/// raised — the instrument behind the zero-allocation assertion.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus atomic counter bumps —
// the layout/pointer contracts `GlobalAlloc` requires are delegated
// unchanged to an allocator that upholds them.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded verbatim from our caller, who
        // upholds GlobalAlloc's contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: as in `alloc` — arguments forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr` came from this allocator (a System pointer)
        // and `layout`/`new_size` are forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by this allocator with `layout`,
        // i.e. by `System`, which is what frees it.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

const MEMBERS: usize = 1000;
const GOSSIP_STEP: Duration = Duration::from_millis(200);

fn steady_state_node() -> SwimNode {
    let mut node = SwimNode::new(
        "local".into(),
        NodeAddr::new([10, 0, 0, 1], 7946),
        Config::lan().lifeguard(),
        7,
    );
    node.start(Time::ZERO);
    let peers = (0..MEMBERS as u32).map(|i| {
        (
            NodeName::from(format!("peer-{i}").as_str()),
            NodeAddr::new([10, 1, (i >> 8) as u8, (i & 0xff) as u8], 7946),
        )
    });
    node.bootstrap_peers(peers, Time::ZERO);
    node
}

/// One pre-encoded gossip arrival per incarnation, so the broadcast
/// queue never runs dry and every gossip tick emits packets.
fn gossip_payload(incarnation: u64) -> Bytes {
    codec::encode_message(&Message::Alive(Alive {
        incarnation: Incarnation(incarnation),
        node: "peer-0".into(),
        addr: NodeAddr::new([10, 1, 0, 0], 7946),
        meta: Bytes::new(),
    }))
}

/// Advances one steady-state cycle: gossip arrival + due timers. The
/// outputs are left queued for the caller to drain.
fn advance_cycle(node: &mut SwimNode, now: &mut Time, incarnation: &mut u64) {
    *incarnation += 1;
    node.handle_input(
        Input::Datagram {
            from: NodeAddr::new([10, 1, 0, 0], 7946),
            payload: gossip_payload(*incarnation),
        },
        *now,
    )
    .expect("valid gossip payload");
    *now += GOSSIP_STEP;
    node.handle_input(Input::Tick, *now).expect("tick");
}

/// Zero-copy drain: every queued output is visited, packet payloads
/// stay borrows of the node's scratch buffer.
fn drain_poll(node: &mut SwimNode) -> usize {
    let mut packets = 0;
    while let Some(output) = node.poll_output() {
        if let Output::Packet { payload, .. } = &output {
            packets += 1;
            black_box(payload.len());
        }
        black_box(&output);
    }
    packets
}

/// Proof obligation for the acceptance criteria: after warm-up, a full
/// output drain performs zero allocations, while the seed baseline
/// allocates per packet (fresh `Vec` growth + one owned `Bytes` each).
///
/// The metrics plane is always on — every cycle records into the
/// core's counters and fixed-size histograms — so this assertion also
/// proves that instrumentation costs zero allocations per poll.
fn assert_poll_is_allocation_free() {
    let mut node = steady_state_node();
    let mut now = Time::ZERO;
    let mut inc = 10;
    // Warm-up: let the scratch arena, queue and builder reach their
    // high-water capacities.
    for _ in 0..200 {
        advance_cycle(&mut node, &mut now, &mut inc);
        drain_poll(&mut node);
    }
    let before = node.metrics();
    let mut packets = 0usize;
    let mut poll_allocs = 0u64;
    for _ in 0..200 {
        advance_cycle(&mut node, &mut now, &mut inc);
        poll_allocs += count_allocs(|| {
            packets += drain_poll(&mut node);
        });
    }
    assert!(
        packets > 0,
        "steady-state cycles must actually emit packets"
    );
    assert_eq!(
        poll_allocs, 0,
        "poll_output drain must be allocation-free in steady state"
    );
    // The counted region was not a dead zone for observability: the
    // metrics kept moving while allocations stayed at zero. (Unacked
    // probes drive probes_sent/failed and push the LHM up; the gossip
    // arrivals keep the broadcast queue hot.)
    let after = node.metrics();
    assert!(
        after.probes_sent > before.probes_sent,
        "steady-state cycles must keep probing"
    );
    assert!(after.lhm_peak > 0, "unacked probes must move the LHM");
    assert!(
        after.broadcast_queue_peak > 0,
        "gossip arrivals must register queue depth"
    );

    // The seed-shaped baseline on the same workload allocates at least
    // one Bytes per packet plus the Vec itself.
    let mut baseline_allocs = 0u64;
    let mut baseline_packets = 0usize;
    for _ in 0..200 {
        advance_cycle(&mut node, &mut now, &mut inc);
        baseline_allocs += count_allocs(|| {
            let out = collect_outputs_vec(&mut node);
            baseline_packets += out.len();
            black_box(&out);
        });
    }
    assert!(
        baseline_allocs as usize >= baseline_packets,
        "baseline must allocate per collected output"
    );
    println!(
        "driver/alloc-proof: poll drain 0 allocs over {packets} packets; \
         vec baseline {baseline_allocs} allocs over {baseline_packets} outputs"
    );
}

fn bench_driver(c: &mut Criterion) {
    assert_poll_is_allocation_free();

    // Full steady-state cycle (input + tick + drain), allocation-free
    // poll path.
    {
        let mut node = steady_state_node();
        let mut now = Time::ZERO;
        let mut inc = 10;
        c.bench_function("driver/poll_output", |b| {
            b.iter(|| {
                advance_cycle(&mut node, &mut now, &mut inc);
                drain_poll(&mut node)
            })
        });
    }

    // The same cycle drained through the seed's Vec<Output> shape.
    {
        let mut node = steady_state_node();
        let mut now = Time::ZERO;
        let mut inc = 10;
        c.bench_function("driver/vec_baseline", |b| {
            b.iter(|| {
                advance_cycle(&mut node, &mut now, &mut inc);
                collect_outputs_vec(&mut node).len()
            })
        });
    }
}

criterion_group!(benches, bench_driver);
criterion_main!(benches);
