//! Table IV + Figures 2/3 (bench-scale): false positives in the Interval
//! experiment, per Table I configuration.
//!
//! The full-scale artifacts come from `lifeguard-repro fp`; this bench
//! runs a 32-node version of the Interval experiment per configuration
//! and prints the observed FP/FP- counts (the table's columns) so the
//! ordering SWIM > LHA-Probe > LHA-Suspicion > Lifeguard is checked on
//! every bench run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifeguard_bench::bench_interval;
use lifeguard_core::config::{Config, LifeguardConfig};
use lifeguard_experiments::tables::table1_configs;

fn table4_fig2_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_interval_fp");
    group.sample_size(10);
    for (label, components) in table1_configs() {
        let config = Config::lan().with_components(components);
        let out = bench_interval(6, config.clone(), 42);
        println!(
            "table4[{label}]: FP={} FP-={}",
            out.fp_events, out.fp_healthy_events
        );
        group.bench_with_input(BenchmarkId::new("run", label), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                bench_interval(6, config.clone(), seed).fp_events
            })
        });
    }
    group.finish();

    // Figure 2/3 shape: FP grows with concurrency for SWIM.
    let mut group = c.benchmark_group("fig2_fig3_concurrency");
    group.sample_size(10);
    for c_anom in [2usize, 6, 10] {
        let swim = bench_interval(c_anom, Config::lan(), 7);
        let lg = bench_interval(
            c_anom,
            Config::lan().with_components(LifeguardConfig::full()),
            7,
        );
        println!(
            "fig2/3[C={c_anom}]: SWIM FP={} FP-={} | Lifeguard FP={} FP-={}",
            swim.fp_events, swim.fp_healthy_events, lg.fp_events, lg.fp_healthy_events
        );
        group.bench_with_input(
            BenchmarkId::new("swim", c_anom),
            &c_anom,
            |b, &c_anom| {
                let mut seed = 100u64;
                b.iter(|| {
                    seed += 1;
                    bench_interval(c_anom, Config::lan(), seed).fp_events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table4_fig2_fig3);
criterion_main!(benches);
