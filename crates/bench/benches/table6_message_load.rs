//! Table VI (bench-scale): message and byte load of the Interval
//! experiment per configuration.
//!
//! Prints the observed totals; the paper's shape is a modest message
//! increase for LHA-Suspicion/Lifeguard (re-gossiped suspicions) partly
//! offset by LHA-Probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifeguard_bench::bench_interval;
use lifeguard_core::config::Config;
use lifeguard_experiments::tables::table1_configs;

fn table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_message_load");
    group.sample_size(10);
    for (label, components) in table1_configs() {
        let config = Config::lan().with_components(components);
        let out = bench_interval(6, config.clone(), 42);
        println!(
            "table6[{label}]: msgs={} bytes={}",
            out.msgs_sent, out.bytes_sent
        );
        group.bench_with_input(BenchmarkId::new("run", label), &config, |b, config| {
            let mut seed = 200u64;
            b.iter(|| {
                seed += 1;
                bench_interval(6, config.clone(), seed).msgs_sent
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table6);
criterion_main!(benches);
