//! Checked-in naive baselines for the hot-path benchmarks.
//!
//! These reproduce the pre-optimisation (seed) data-structure designs
//! verbatim so `benches/micro.rs` can measure the indexed
//! [`lifeguard_core::membership::Membership`] and bucketed
//! [`lifeguard_core::broadcast::BroadcastQueue`] against the exact
//! algorithms they replaced:
//!
//! * [`NaiveMembership`] — `BTreeMap<NodeName, Member>`; `live_count` is
//!   a full O(n) scan and `sample` filter-collects all n members into a
//!   candidate `Vec` before a partial Fisher–Yates.
//! * [`NaiveBroadcastQueue`] — flat `Vec`; every enqueue runs an O(n)
//!   `retain` to invalidate the subject and every `fill` sorts the whole
//!   queue (O(n log n)) and finishes with another full `retain`.
//!
//! They are *reference models*, not production code: the property tests
//! in `lifeguard-core` also compare the optimised structures against
//! equivalent models for behavioural agreement.

use std::collections::BTreeMap;

use bytes::Bytes;
use lifeguard_core::member::Member;
use lifeguard_core::time::Time;
use lifeguard_proto::compound::CompoundBuilder;
use lifeguard_proto::{codec, MemberState, Message, NodeName};
use rand::{Rng, RngExt};

/// The seed's `Membership`: ordered map, full scans for counts and
/// sampling.
#[derive(Clone, Debug, Default)]
pub struct NaiveMembership {
    members: BTreeMap<NodeName, Member>,
}

impl NaiveMembership {
    /// Creates an empty table.
    pub fn new() -> Self {
        NaiveMembership::default()
    }

    /// Number of known members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// O(n) live count, as the seed computed on every suspicion start
    /// and transmit-limit evaluation.
    pub fn live_count(&self) -> usize {
        self.members.values().filter(|m| m.is_live()).count()
    }

    /// O(n) alive count.
    pub fn alive_count(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.state == MemberState::Alive)
            .count()
    }

    /// Lookup by name (O(log n)).
    pub fn get(&self, name: &NodeName) -> Option<&Member> {
        self.members.get(name)
    }

    /// Insert or replace.
    pub fn upsert(&mut self, member: Member) -> Option<Member> {
        self.members.insert(member.name.clone(), member)
    }

    /// Remove a record.
    pub fn remove(&mut self, name: &NodeName) -> Option<Member> {
        self.members.remove(name)
    }

    /// Transitions a member's state.
    pub fn set_state(&mut self, name: &NodeName, state: MemberState, now: Time) -> bool {
        match self.members.get_mut(name) {
            Some(m) => {
                m.set_state(state, now);
                true
            }
            None => false,
        }
    }

    /// All records in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Member> {
        self.members.values()
    }

    /// The seed's sampler: filter-collect all n members, then partial
    /// Fisher–Yates — O(n) time and an O(n) allocation per call.
    pub fn sample<R: Rng>(
        &self,
        k: usize,
        rng: &mut R,
        mut filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        let mut candidates: Vec<&Member> = self.members.values().filter(|m| filter(m)).collect();
        let n = candidates.len();
        let take = k.min(n);
        for i in 0..take {
            let j = rng.random_range(i..n);
            candidates.swap(i, j);
        }
        candidates.truncate(take);
        candidates
    }
}

#[derive(Clone, Debug)]
struct NaiveQueued {
    subject: NodeName,
    encoded: Bytes,
    transmits: u32,
    id: u64,
}

/// The seed's `BroadcastQueue`: flat vector, O(n) invalidation per
/// enqueue, full sort per fill.
#[derive(Clone, Debug, Default)]
pub struct NaiveBroadcastQueue {
    items: Vec<NaiveQueued>,
    next_id: u64,
}

impl NaiveBroadcastQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        NaiveBroadcastQueue::default()
    }

    /// Number of queued broadcasts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueue with O(n) invalidation `retain`.
    pub fn enqueue(&mut self, msg: Message) {
        let Some(subject) = msg.gossip_subject().cloned() else {
            return;
        };
        self.items.retain(|q| q.subject != subject);
        let encoded = codec::encode_message(&msg);
        let id = self.next_id;
        self.next_id += 1;
        self.items.push(NaiveQueued {
            subject,
            encoded,
            transmits: 0,
            id,
        });
    }

    /// Fill with a full O(n log n) sort and trailing O(n) retain.
    pub fn fill(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
    ) {
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by_key(|&i| (self.items[i].transmits, u64::MAX - self.items[i].id));

        let mut used: Vec<usize> = Vec::new();
        for i in order {
            if let Some(ex) = exclude {
                if &self.items[i].subject == ex {
                    continue;
                }
            }
            if builder.remaining() < self.items[i].encoded.len() {
                continue;
            }
            if builder.try_add(self.items[i].encoded.clone()) {
                used.push(i);
            }
        }
        for &i in &used {
            self.items[i].transmits += 1;
        }
        self.items.retain(|q| q.transmits < transmit_limit);
    }
}

/// One entry in [`NaiveTimerHeap`].
#[derive(Clone, Debug)]
struct NaiveTimerEntry<T> {
    at: Time,
    timer: T,
}

/// The seed's `SwimNode` timer store: a `BinaryHeap` keyed `(at, id)`
/// with *lazy staleness* — cancellation marks the id in a set and the
/// dead entry stays in the heap, paying its O(log n) pop (plus a set
/// probe) when it finally surfaces. Rescheduling is cancel + re-push, so
/// a Lifeguard suspicion whose timeout shrinks on every confirmation
/// leaves a trail of tombstones behind.
#[derive(Clone, Debug)]
pub struct NaiveTimerHeap<T> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Time, u64)>>,
    entries: std::collections::HashMap<u64, NaiveTimerEntry<T>>,
    next_id: u64,
}

impl<T> Default for NaiveTimerHeap<T> {
    fn default() -> Self {
        NaiveTimerHeap {
            heap: std::collections::BinaryHeap::new(),
            entries: std::collections::HashMap::new(),
            next_id: 0,
        }
    }
}

impl<T> NaiveTimerHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        NaiveTimerHeap::default()
    }

    /// Number of live (uncancelled) timers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// O(log n) push.
    pub fn schedule(&mut self, at: Time, timer: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(std::cmp::Reverse((at, id)));
        self.entries.insert(id, NaiveTimerEntry { at, timer });
        id
    }

    /// Lazy cancellation: the heap entry stays behind as a tombstone.
    pub fn cancel(&mut self, id: u64) -> Option<T> {
        self.entries.remove(&id).map(|e| e.timer)
    }

    /// Cancel + re-push, as the seed's suspicion handling effectively
    /// did by re-arming `SuspicionCheck` on every deadline change.
    pub fn reschedule(&mut self, id: u64, at: Time) -> Option<u64> {
        let timer = self.cancel(id)?;
        Some(self.schedule(at, timer))
    }

    /// The earliest live deadline; pops tombstones as it walks.
    pub fn next_deadline(&mut self) -> Option<Time> {
        while let Some(std::cmp::Reverse((at, id))) = self.heap.peek().copied() {
            if self.entries.contains_key(&id) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops the earliest live timer due at or before `now`, filtering
    /// tombstones at fire time (the seed's staleness-guard pattern).
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, T)> {
        while let Some(std::cmp::Reverse((at, id))) = self.heap.peek().copied() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if let Some(e) = self.entries.remove(&id) {
                return Some((e.at, e.timer));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Seed output-collection baseline
// ---------------------------------------------------------------------

use lifeguard_core::driver::OwnedOutput;
use lifeguard_core::node::SwimNode;

/// The seed's `Vec<Output>` driving surface, emulated over the poll
/// API: every driving call allocated a fresh `Vec` and materialised
/// every packet as an owned `Bytes` (the old `CompoundBuilder::finish`
/// froze a fresh buffer per packet; `OwnedOutput::from` performs the
/// same per-packet copy). `benches/driver.rs` measures the
/// allocation-free `poll_output` drain against this exact shape.
pub fn collect_outputs_vec(node: &mut SwimNode) -> Vec<OwnedOutput> {
    let mut out = Vec::new();
    while let Some(output) = node.poll_output() {
        out.push(OwnedOutput::from(output));
    }
    out
}
