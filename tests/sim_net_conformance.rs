//! Sim-vs-net conformance: one scripted input trace — join, acked probe
//! rounds, suspicion, refutation, peer leave, own leave — is driven
//! through the shared sans-I/O `Driver` three times:
//!
//! * against the **simulator clock** (virtual time, a `Vec<OwnedOutput>`
//!   sink, the test playing the scripted peer inline),
//! * against a **loopback `Agent` on the threaded runtime** (real
//!   UDP/TCP sockets, wall-clock ticker threads), and
//! * against a **loopback `Agent` on the reactor runtime** (the same
//!   sockets driven by the single readiness-driven event loop),
//!
//! asserting all runs produce identical membership-state transitions
//! and the same `Event` sequence. This is the property the paper's
//! methodology rests on: the protocol logic observed in simulation is
//! the logic deployed on the network — on whichever runtime drives it.
//!
//! The observability plane conforms too: every run also captures the
//! core's metrics snapshot, and the subset that does not depend on
//! wall-clock scheduling (suspicion/refutation/failure/flap counts,
//! anti-entropy message counts, the LHM ceiling) must be identical
//! across all three runtimes.

use std::net::{TcpListener, UdpSocket};
use std::time::{Duration, Instant};

use bytes::Bytes;
use lifeguard::core::config::Config;
use lifeguard::core::driver::{Driver, OwnedOutput};
use lifeguard::core::event::Event;
use lifeguard::core::node::{Input, SwimNode};
use lifeguard::core::time::Time;
use lifeguard::metrics::{CoreSnapshot, Snapshot};
use lifeguard::net::agent::{Agent, AgentConfig, IoBatchConfig, Runtime};
use lifeguard::net::transport;
use lifeguard::proto::{
    codec, compound, Ack, Alive, Dead, Incarnation, MemberState, Message, NodeAddr, PushPull,
    PushNodeState,
};

const PEER: &str = "peer-b";
/// Direct probes the peer acks before going silent.
const ACKS_BEFORE_SILENCE: usize = 3;

/// The protocol configuration under test: fast probe/gossip timing so
/// the whole trace fits in a few seconds of wall clock, periodic
/// push-pull/reconnect and the stream fallback probe disabled so the
/// only stream traffic is the join itself.
fn conformance_config() -> Config {
    let mut cfg = Config::lan()
        .lifeguard()
        .with_probe_timing(Duration::from_millis(200), Duration::from_millis(100));
    cfg.gossip_interval = Duration::from_millis(50);
    cfg.suspicion_alpha = 3.0;
    cfg.suspicion_beta = 2.0;
    cfg.push_pull_interval = None;
    cfg.reconnect_interval = None;
    cfg.stream_fallback_probe = false;
    cfg
}

/// One observed membership transition: the event kind about the peer
/// plus the peer's membership state immediately after it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Observed {
    Joined(MemberState),
    Suspected(MemberState),
    Recovered(MemberState),
    Left(MemberState),
}

/// The trace every conforming run must produce.
fn expected() -> Vec<Observed> {
    vec![
        Observed::Joined(MemberState::Alive),
        Observed::Suspected(MemberState::Suspect),
        Observed::Recovered(MemberState::Alive),
        Observed::Left(MemberState::Left),
    ]
}

fn classify(event: &Event, peer_state: MemberState) -> Option<Observed> {
    match event {
        Event::MemberJoined { name } if name.as_str() == PEER => {
            Some(Observed::Joined(peer_state))
        }
        Event::MemberSuspected { name, .. } if name.as_str() == PEER => {
            Some(Observed::Suspected(peer_state))
        }
        Event::MemberRecovered { name } if name.as_str() == PEER => {
            Some(Observed::Recovered(peer_state))
        }
        Event::MemberLeft { name } if name.as_str() == PEER => Some(Observed::Left(peer_state)),
        Event::MemberFailed { name, .. } if name.as_str() == PEER => {
            panic!("peer must refute before the suspicion expires")
        }
        _ => None,
    }
}

/// The scripted peer's reaction to one decoded message from the node
/// under test, shared verbatim by the sim and net harnesses.
struct PeerScript {
    acks_sent: usize,
    refuted: bool,
}

impl PeerScript {
    fn new() -> PeerScript {
        PeerScript {
            acks_sent: 0,
            refuted: false,
        }
    }

    /// Whether the peer currently answers direct probes: it acks the
    /// first [`ACKS_BEFORE_SILENCE`] pings, goes silent until it has
    /// refuted the resulting suspicion, then answers again.
    fn acking(&self) -> bool {
        self.acks_sent < ACKS_BEFORE_SILENCE || self.refuted
    }

    /// Datagram messages the peer sends back for one received message.
    fn on_datagram_msg(&mut self, msg: &Message) -> Option<Message> {
        match msg {
            Message::Ping(p) if p.target.as_str() == PEER && self.acking() => {
                self.acks_sent += 1;
                Some(Message::Ack(Ack { seq: p.seq }))
            }
            _ => None,
        }
    }

    /// The peer's refutation (sent when the node under test suspects
    /// it).
    fn refute(&mut self, peer_addr: NodeAddr) -> Message {
        self.refuted = true;
        Message::Alive(Alive {
            incarnation: Incarnation(2),
            node: PEER.into(),
            addr: peer_addr,
            meta: Bytes::new(),
        })
    }

    /// The peer's graceful leave (sent once the refutation was
    /// observed).
    fn leave(&self) -> Message {
        Message::Dead(Dead {
            incarnation: Incarnation(2),
            node: PEER.into(),
            from: PEER.into(),
        })
    }

    /// The push-pull reply to the node's join.
    fn join_reply(&self, peer_addr: NodeAddr) -> Message {
        Message::PushPull(PushPull {
            join: false,
            reply: true,
            states: vec![PushNodeState {
                name: PEER.into(),
                addr: peer_addr,
                incarnation: Incarnation(1),
                state: MemberState::Alive,
                meta: Bytes::new(),
            }],
        })
    }
}

/// The part of a core metrics snapshot that is a pure function of the
/// scripted trace, independent of how fast wall-clock time moved:
/// exactly one suspicion is raised and resolved by the peer's
/// refutation (one flap), nothing is ever declared failed, no
/// anti-entropy rounds run (push-pull and reconnect are disabled), and
/// the LHM ceiling comes from the config. Probe and RTT counts are
/// excluded — they scale with elapsed wall time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct DeterministicCore {
    suspicions_raised: u64,
    refutations: u64,
    failures_declared: u64,
    flaps: u64,
    suspicion_lifetimes_recorded: u64,
    delta_syncs: u64,
    full_sync_fallbacks: u64,
    lhm_max: u64,
}

fn deterministic_subset(c: &CoreSnapshot) -> DeterministicCore {
    DeterministicCore {
        suspicions_raised: c.suspicions_raised,
        refutations: c.refutations,
        failures_declared: c.failures_declared,
        flaps: c.flaps,
        suspicion_lifetimes_recorded: c.suspicion_lifetime.count(),
        delta_syncs: c.delta_syncs,
        full_sync_fallbacks: c.full_sync_fallbacks,
        lhm_max: c.lhm_max,
    }
}

/// Runs the trace against the simulator clock: the driver is ticked in
/// virtual time and the scripted peer answers inline with a fixed 2 ms
/// delivery delay.
fn run_sim_trace() -> (Vec<Observed>, CoreSnapshot) {
    let alpha_addr = NodeAddr::new([10, 0, 0, 1], 7946);
    let peer_addr = NodeAddr::new([10, 0, 0, 2], 7946);
    let mut driver = Driver::new(SwimNode::new(
        "alpha".into(),
        alpha_addr,
        conformance_config(),
        7,
    ));
    let mut script = PeerScript::new();
    let mut observed = Vec::new();
    // Messages in flight from the peer to alpha: (deliver_at, input).
    let mut inbound: Vec<(Time, Input)> = Vec::new();
    let delay = Duration::from_millis(2);

    let mut sink: Vec<OwnedOutput> = Vec::new();
    driver.start(Time::ZERO, &mut sink);
    driver.join(vec![peer_addr], Time::ZERO, &mut sink);

    let deadline = Time::from_secs(60);
    let mut now = Time::ZERO;
    while observed.len() < expected().len() && now < deadline {
        // React to everything alpha produced.
        for output in sink.drain(..) {
            match output {
                OwnedOutput::Stream { to, msg } => {
                    assert_eq!(to, peer_addr, "only the peer is addressable");
                    if matches!(&msg, Message::PushPull(pp) if pp.join) {
                        inbound.push((
                            now + delay,
                            Input::Stream {
                                from: peer_addr,
                                msg: script.join_reply(peer_addr),
                            },
                        ));
                    }
                }
                OwnedOutput::Packet { to, payload } => {
                    if to != peer_addr {
                        continue;
                    }
                    for msg in compound::decode_packet(&payload).expect("valid packet") {
                        if let Some(reply) = script.on_datagram_msg(&msg) {
                            inbound.push((
                                now + delay,
                                Input::Datagram {
                                    from: peer_addr,
                                    payload: codec::encode_message(&reply),
                                },
                            ));
                        }
                    }
                }
                OwnedOutput::Event(event) => {
                    let state = driver
                        .node()
                        .member(&PEER.into())
                        .map(|m| m.state)
                        .expect("peer is known once events about it flow");
                    if let Some(obs) = classify(&event, state) {
                        // The script reacts to alpha's conclusions just
                        // like the real peer reacts to incoming gossip.
                        match obs {
                            Observed::Suspected(_) => inbound.push((
                                now + delay,
                                Input::Datagram {
                                    from: peer_addr,
                                    payload: codec::encode_message(&script.refute(peer_addr)),
                                },
                            )),
                            Observed::Recovered(_) => inbound.push((
                                now + delay,
                                Input::Datagram {
                                    from: peer_addr,
                                    payload: codec::encode_message(&script.leave()),
                                },
                            )),
                            _ => {}
                        }
                        observed.push(obs);
                    }
                }
            }
        }
        // Advance virtual time to the next inbound delivery or timer.
        inbound.sort_by_key(|(at, _)| *at);
        let next_delivery = inbound.first().map(|(at, _)| *at);
        let next_wake = driver.next_wake();
        let next = match (next_delivery, next_wake) {
            (Some(d), Some(w)) => d.min(w),
            (Some(d), None) => d,
            (None, Some(w)) => w,
            (None, None) => break,
        };
        now = next.max(now);
        if next_delivery.is_some_and(|d| d <= now) {
            let (_, input) = inbound.remove(0);
            driver
                .handle(input, now, &mut sink)
                .expect("scripted inputs are well-formed");
        } else {
            driver.tick(now, &mut sink);
        }
    }

    // Snapshot before the leave so all runs capture at the same point
    // in the scripted trace.
    let snapshot = driver.metrics();
    // Final step of the trace: alpha leaves.
    driver.leave(now, &mut sink);
    assert!(driver.node().has_left());
    (observed, snapshot)
}

/// Runs the same trace against a loopback [`Agent`] on the given I/O
/// runtime: real sockets, the agent's own wall-clock scheduling, the
/// scripted peer bound to a real UDP socket + TCP listener on one port.
fn run_net_trace(runtime: Runtime) -> (Vec<Observed>, Snapshot) {
    run_net_trace_with(runtime, IoBatchConfig::default())
}

fn run_net_trace_with(runtime: Runtime, io_batch: IoBatchConfig) -> (Vec<Observed>, Snapshot) {
    // The peer binds TCP first and UDP on the same port, like an agent.
    let peer_tcp = TcpListener::bind("127.0.0.1:0").expect("bind peer tcp");
    let peer_sock = peer_tcp.local_addr().expect("peer addr");
    let peer_udp = UdpSocket::bind(peer_sock).expect("bind peer udp");
    peer_udp
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("set timeout");
    peer_tcp.set_nonblocking(true).expect("nonblocking");
    let peer_addr = NodeAddr::from(peer_sock);

    let alpha = Agent::start(
        AgentConfig::local("alpha")
            .protocol(conformance_config())
            .seed(7)
            .runtime(runtime)
            .io_batch(io_batch),
    )
    .expect("start agent");
    let alpha_sock = alpha.addr();
    alpha.join(&[peer_sock]);

    let mut script = PeerScript::new();
    let mut observed = Vec::new();
    let mut buf = vec![0u8; 65536];
    let deadline = Instant::now() + Duration::from_secs(30);

    while observed.len() < expected().len() && Instant::now() < deadline {
        // Answer the join push-pull arriving on the peer's TCP listener.
        if let Ok((mut stream, _)) = peer_tcp.accept() {
            let _ = stream.set_read_timeout(Some(transport::STREAM_TIMEOUT));
            if let Ok((from, Message::PushPull(pp))) = transport::read_frame(&mut stream) {
                if pp.join {
                    let _ = transport::send_stream(
                        from.socket_addr(),
                        peer_addr,
                        &script.join_reply(peer_addr),
                    );
                }
            }
        }
        // Answer probes arriving on the peer's UDP socket.
        if let Ok((len, _)) = peer_udp.recv_from(&mut buf) {
            if let Ok(msgs) = compound::decode_packet(&buf[..len]) {
                for msg in msgs {
                    if let Some(reply) = script.on_datagram_msg(&msg) {
                        let _ = peer_udp
                            .send_to(&codec::encode_message(&reply), alpha_sock);
                    }
                }
            }
        }
        // React to alpha's conclusions exactly as the sim script does.
        for agent_event in alpha.events().try_iter() {
            let state = alpha
                .members()
                .iter()
                .find(|m| m.name.as_str() == PEER)
                .map(|m| m.state)
                .expect("peer is known once events about it flow");
            if let Some(obs) = classify(&agent_event.event, state) {
                match obs {
                    Observed::Suspected(_) => {
                        let refute = script.refute(peer_addr);
                        let _ = peer_udp.send_to(&codec::encode_message(&refute), alpha_sock);
                    }
                    Observed::Recovered(_) => {
                        let leave = script.leave();
                        let _ = peer_udp.send_to(&codec::encode_message(&leave), alpha_sock);
                    }
                    _ => {}
                }
                observed.push(obs);
            }
        }
    }

    // Snapshot before the leave, matching the sim run's capture point.
    let snapshot = alpha.metrics();
    alpha.leave();
    let left = alpha
        .members()
        .iter()
        .any(|m| m.name.as_str() == "alpha" && m.state == MemberState::Left);
    assert!(left, "agent must record its own leave");
    alpha.shutdown();
    (observed, snapshot)
}

/// The headline conformance assertion: every runtime — simulator
/// clock, threaded agent, reactor agent — driving the same core
/// through the same `Driver`, observes the identical trace.
#[test]
fn sim_and_net_observe_identical_trace() {
    let (sim, sim_core) = run_sim_trace();
    assert_eq!(
        sim,
        expected(),
        "simulator-clock run diverged from the scripted trace"
    );
    let (threaded, threaded_snap) = run_net_trace(Runtime::Threaded);
    assert_eq!(
        threaded,
        expected(),
        "threaded loopback-agent run diverged from the scripted trace"
    );
    let (reactor, reactor_snap) = run_net_trace(Runtime::Reactor);
    assert_eq!(
        reactor,
        expected(),
        "reactor loopback-agent run diverged from the scripted trace"
    );
    assert_eq!(sim, threaded, "sim and threaded-net traces must match");
    assert_eq!(sim, reactor, "sim and reactor-net traces must match");

    // The metrics plane observed the identical protocol history: the
    // schedule-independent core counters agree across all runtimes.
    let want = DeterministicCore {
        suspicions_raised: 1,
        refutations: 0, // the *peer* refutes; alpha never refutes itself
        failures_declared: 0,
        flaps: 1,
        suspicion_lifetimes_recorded: 1,
        delta_syncs: 0,
        full_sync_fallbacks: 0,
        lhm_max: u64::from(conformance_config().effective_awareness_max()),
    };
    assert_eq!(deterministic_subset(&sim_core), want, "sim metrics");
    assert_eq!(
        deterministic_subset(&threaded_snap.core),
        want,
        "threaded metrics"
    );
    assert_eq!(
        deterministic_subset(&reactor_snap.core),
        want,
        "reactor metrics"
    );

    // Wall-clock-dependent metrics are only sanity-checked: both
    // agents probed the peer and recorded RTTs for the acked probes.
    for (label, snap) in [("threaded", &threaded_snap), ("reactor", &reactor_snap)] {
        assert!(snap.core.probes_sent > 0, "{label}: no probes recorded");
        assert!(
            snap.core.probe_rtt.count() >= ACKS_BEFORE_SILENCE as u64,
            "{label}: acked probes must record RTTs"
        );
        assert!(snap.io.datagrams_sent > 0, "{label}: no datagrams counted");
        assert!(
            snap.io.datagram_bytes > snap.io.datagrams_sent,
            "{label}: datagram bytes must exceed datagram count"
        );
        assert!(snap.io.streams_sent > 0, "{label}: the join stream counts");
    }
    // Only the reactor runtime counts poller wakeups.
    assert_eq!(threaded_snap.io.wakeups, 0, "threaded agent has no poller");
    assert!(reactor_snap.io.wakeups > 0, "reactor never woke");
}

/// Batching is a syscall-count optimisation, never a protocol change:
/// the reactor with sendmmsg/recvmmsg batching on (the default) and
/// with batching forced off observe the identical trace — which is
/// also the sim's trace. A deliberately tiny send batch exercises the
/// mid-burst flush boundary on the same wire run.
#[test]
fn batched_and_unbatched_reactors_observe_identical_trace() {
    let (batched, batched_snap) = run_net_trace_with(Runtime::Reactor, IoBatchConfig::default());
    assert_eq!(
        batched,
        expected(),
        "batched reactor run diverged from the scripted trace"
    );
    let (unbatched, unbatched_snap) =
        run_net_trace_with(Runtime::Reactor, IoBatchConfig::single_shot());
    assert_eq!(
        unbatched,
        expected(),
        "single-shot reactor run diverged from the scripted trace"
    );
    let (tiny_batches, _) = run_net_trace_with(
        Runtime::Reactor,
        IoBatchConfig {
            batch_size: 2,
            recv_burst: 2,
            ..IoBatchConfig::default()
        },
    );
    assert_eq!(
        tiny_batches,
        expected(),
        "tiny-batch reactor run diverged from the scripted trace"
    );
    assert_eq!(batched, unbatched, "batching must not change the trace");
    assert_eq!(batched, tiny_batches, "batch size must not change the trace");
    // Batching changes syscall counts, never the protocol metrics.
    assert_eq!(
        deterministic_subset(&batched_snap.core),
        deterministic_subset(&unbatched_snap.core),
        "batching must not change the core metrics"
    );
}
