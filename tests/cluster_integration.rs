//! Cross-crate integration tests: protocol core + simulator +
//! experiment harness working together on end-to-end behaviours the
//! paper depends on.

use std::time::Duration;

use lifeguard::core::config::{Config, LifeguardConfig};
use lifeguard::core::event::Event;
use lifeguard::experiments::scenario::{IntervalScenario, ThresholdScenario};
use lifeguard::sim::anomaly::AnomalySpec;
use lifeguard::sim::clock::SimTime;
use lifeguard::sim::cluster::{ClusterBuilder, SimAction};
use lifeguard::sim::network::NetworkConfig;

/// A slow-but-alive member must never be lost from the group when its
/// stalls are shorter than the suspicion timeout allows: Lifeguard's
/// whole purpose.
#[test]
fn lifeguard_keeps_intermittently_slow_member_alive() {
    let mut cluster = ClusterBuilder::new(16)
        .config(Config::lan().lifeguard())
        .seed(10)
        .anomaly(
            5,
            AnomalySpec::Interval {
                start: SimTime::from_secs(15),
                duration: Duration::from_secs(6),
                interval: Duration::from_millis(200),
                until: SimTime::from_secs(70),
            },
        )
        .build();
    cluster.run_for(Duration::from_secs(90));
    assert_eq!(
        cluster.trace().first_failure_detection("node-5"),
        None,
        "Lifeguard must not declare the slow member failed"
    );
}

/// A member that stalls for longer than the suspicion timeout *is*
/// declared failed under both configurations (detection parity, Table
/// V: independent confirmations drive Lifeguard's timeout down to Min
/// for genuinely unresponsive members) — but only SWIM also accuses
/// *healthy* members in the process.
#[test]
fn swim_accuses_healthy_members_where_lifeguard_does_not() {
    let run = |config: Config| {
        let mut cluster = ClusterBuilder::new(24)
            .config(config)
            .seed(11)
            .anomaly(
                7,
                AnomalySpec::Interval {
                    start: SimTime::from_secs(15),
                    duration: Duration::from_secs(14),
                    interval: Duration::from_millis(30),
                    until: SimTime::from_secs(100),
                },
            )
            .build();
        cluster.run_for(Duration::from_secs(120));
        let about_slow = cluster
            .trace()
            .failures()
            .filter(|(_, _, name)| name.as_str() == "node-7")
            .count();
        let about_healthy = cluster
            .trace()
            .failures()
            .filter(|(_, _, name)| name.as_str() != "node-7")
            .count();
        (about_slow, about_healthy)
    };
    let (swim_slow, swim_healthy) = run(Config::lan());
    let (lg_slow, lg_healthy) = run(Config::lan().lifeguard());
    // Both must detect the genuinely unresponsive member.
    assert!(swim_slow > 0, "SWIM must detect the 14 s stalls");
    assert!(lg_slow > 0, "Lifeguard must also detect the 14 s stalls");
    // Only the slow member itself accuses healthy members under SWIM.
    assert!(
        swim_healthy > 0,
        "SWIM should produce false accusations of healthy members"
    );
    assert!(
        lg_healthy * 5 <= swim_healthy,
        "Lifeguard false accusations ({lg_healthy}) must be well below SWIM's ({swim_healthy})"
    );
}

/// End-to-end false-positive reduction on the Interval experiment, the
/// paper's headline result (Table IV), at reduced scale.
#[test]
fn interval_experiment_fp_reduction() {
    let run = |config: Config| {
        let mut s = IntervalScenario::new(
            6,
            Duration::from_secs(16),
            Duration::from_millis(64),
            config,
            21,
        );
        s.n = 48;
        s.min_run = Duration::from_secs(90);
        s.run()
    };
    let swim = run(Config::lan());
    let lifeguard = run(Config::lan().lifeguard());
    assert!(
        swim.fp_events > 0,
        "the SWIM baseline must produce false positives under 16 s stalls"
    );
    assert!(
        lifeguard.fp_events * 5 <= swim.fp_events,
        "Lifeguard FP ({}) should be well below SWIM FP ({})",
        lifeguard.fp_events,
        swim.fp_events
    );
}

/// True failures must still be detected with Lifeguard enabled, within
/// a sane factor of the SWIM baseline (Table V: small latency penalty).
#[test]
fn true_failure_detection_latency_is_comparable() {
    let run = |config: Config| {
        let mut s = ThresholdScenario::new(2, Duration::from_secs(30), config, 31);
        s.n = 32;
        s.run_len = Duration::from_secs(60);
        s.run()
    };
    let swim = run(Config::lan());
    let lifeguard = run(Config::lan().lifeguard());
    let avg = |outcome: &lifeguard::experiments::scenario::RunOutcome| {
        let lat: Vec<f64> = outcome
            .first_detect
            .iter()
            .flatten()
            .map(|d| d.as_secs_f64())
            .collect();
        assert!(!lat.is_empty(), "30 s anomalies must be detected");
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let swim_avg = avg(&swim);
    let lifeguard_avg = avg(&lifeguard);
    assert!(
        lifeguard_avg < swim_avg * 2.5,
        "Lifeguard detection ({lifeguard_avg:.1}s) too slow vs SWIM ({swim_avg:.1}s)"
    );
}

/// Individual components must each reduce false positives relative to
/// SWIM (Table IV rows), at least not increase them significantly.
#[test]
fn each_component_does_not_hurt() {
    let run = |components: LifeguardConfig| {
        let mut s = IntervalScenario::new(
            6,
            Duration::from_secs(16),
            Duration::from_millis(64),
            Config::lan().with_components(components),
            41,
        );
        s.n = 48;
        s.min_run = Duration::from_secs(90);
        s.run().fp_events
    };
    let swim = run(LifeguardConfig::swim());
    let probe = run(LifeguardConfig::lha_probe_only());
    let susp = run(LifeguardConfig::lha_suspicion_only());
    let buddy = run(LifeguardConfig::buddy_system_only());
    assert!(swim > 0);
    // LHA-Suspicion is the big hammer (paper: 3% of SWIM).
    assert!(
        susp * 2 <= swim,
        "LHA-Suspicion ({susp}) should at least halve SWIM's FPs ({swim})"
    );
    // The others must not make things much worse.
    assert!(probe <= swim * 12 / 10, "LHA-Probe {probe} vs SWIM {swim}");
    assert!(buddy <= swim * 12 / 10, "Buddy {buddy} vs SWIM {swim}");
}

/// Refutation works end to end: a suspected member that is merely slow
/// recovers in every view, with its incarnation bumped.
#[test]
fn refutation_recovers_suspected_member() {
    let mut cluster = ClusterBuilder::new(8)
        .config(Config::lan())
        .seed(51)
        .build();
    cluster.run_for(Duration::from_secs(15));
    cluster.apply(SimAction::Pause {
        node: 3,
        duration: Duration::from_secs(3),
    });
    cluster.run_for(Duration::from_secs(30));
    // The pause likely triggered suspicions; whatever happened, node-3
    // must be alive everywhere afterwards.
    assert_eq!(cluster.nodes_seeing_alive("node-3").len(), 8);
    let suspected = cluster
        .trace()
        .count(|e| matches!(&e.event, Event::MemberSuspected { name, .. } if name.as_str() == "node-3"));
    if suspected > 0 {
        // If it was suspected, it must have refuted: incarnation > 0.
        assert!(cluster.node(3).incarnation().get() > 0);
    }
}

/// Failure detection keeps working under sustained datagram loss
/// (robustness; SWIM's design goal).
#[test]
fn detection_survives_heavy_packet_loss() {
    let mut cluster = ClusterBuilder::new(12)
        .config(Config::lan().lifeguard())
        .network(NetworkConfig::lossy_lan(0.10))
        .seed(61)
        .build();
    cluster.run_for(Duration::from_secs(20));
    assert!(
        cluster.converged(),
        "cluster should converge under 10% loss"
    );
    cluster.apply(SimAction::Crash { node: 11 });
    cluster.run_for(Duration::from_secs(60));
    assert!(
        cluster.trace().first_failure_detection("node-11").is_some(),
        "crash must be detected despite 10% loss"
    );
}

/// The simulation is bit-for-bit deterministic across the whole stack,
/// including anomalies and loss.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut s = IntervalScenario::new(
            4,
            Duration::from_secs(8),
            Duration::from_millis(256),
            Config::lan().lifeguard(),
            71,
        );
        s.n = 24;
        s.min_run = Duration::from_secs(60);
        let o = s.run();
        (o.fp_events, o.fp_healthy_events, o.msgs_sent, o.bytes_sent)
    };
    assert_eq!(run(), run());
}

/// Graceful leave during an anomaly storm is still reported as a leave,
/// not a failure, by every healthy node.
#[test]
fn leave_amid_anomalies_is_not_a_failure() {
    let mut cluster = ClusterBuilder::new(12)
        .config(Config::lan().lifeguard())
        .seed(81)
        .anomaly(
            2,
            AnomalySpec::Threshold {
                start: SimTime::from_secs(16),
                duration: Duration::from_secs(10),
            },
        )
        .build();
    cluster.run_for(Duration::from_secs(15));
    cluster.apply(SimAction::Leave { node: 5 });
    cluster.run_for(Duration::from_secs(40));
    assert_eq!(cluster.trace().first_failure_detection("node-5"), None);
    let leaves = cluster
        .trace()
        .count(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "node-5"));
    assert!(leaves >= 9, "leave must disseminate (saw {leaves})");
}

/// Steady-state anti-entropy wire cost: under ≤ 1% membership churn per
/// push-pull round, delta sync must ship no more than 10% of the stream
/// bytes full-state sync ships per round, while the cluster stays fully
/// converged. (The 5k-node version of this comparison runs in the
/// `push_pull` bench group; the model-agreement property suite pins that
/// the *content* both modes converge to is byte-identical.)
#[test]
fn delta_push_pull_cuts_steady_state_sync_bytes_by_10x() {
    use bytes::Bytes;

    const N: usize = 512;
    const ROUND: Duration = Duration::from_secs(2);

    let bytes_per_round = |delta: bool| -> u64 {
        let mut cfg = Config::lan().lifeguard();
        cfg.push_pull_interval = Some(ROUND);
        cfg.delta_sync = delta;
        let mut cluster = ClusterBuilder::new(N)
            .config(cfg)
            .seed(42)
            .full_mesh(true)
            .build();
        // Warm-up: several push-pull rounds, enough for every node to
        // accumulate its warm delta partners.
        cluster.run_for(Duration::from_secs(10));
        let rounds = 3u64;
        let start = cluster.telemetry().total().stream_bytes;
        for r in 0..rounds {
            // ≤ 1% churn per round: metadata updates bump incarnations
            // and gossip real membership changes without killing anyone.
            for k in 0..N / 100 {
                let node = (r as usize * 131 + k * 37) % N;
                cluster.apply(SimAction::UpdateMeta {
                    node,
                    meta: Bytes::from(format!("gen-{r}-{k}").into_bytes()),
                });
            }
            cluster.run_for(ROUND);
        }
        let spent = cluster.telemetry().total().stream_bytes - start;
        assert!(
            cluster.converged(),
            "cluster must stay converged (delta = {delta})"
        );
        spent / rounds
    };

    let full = bytes_per_round(false);
    let delta = bytes_per_round(true);
    assert!(full > 0 && delta > 0);
    assert!(
        delta * 10 <= full,
        "delta sync must cut per-round stream bytes to ≤ 10% of full-state sync \
         (delta {delta} B/round vs full {full} B/round = {:.1}%)",
        delta as f64 / full as f64 * 100.0
    );
}
