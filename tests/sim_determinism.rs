//! Determinism regression: the simulator's observable output — the full
//! event trace, telemetry totals and every node's final member table —
//! must be **byte-identical** for a given seed regardless of
//!
//! * the worker count driving the event lanes (1 = inline serial, more =
//!   scoped thread pool), and
//! * the membership-plane shard count inside each node.
//!
//! Both knobs are performance knobs by contract; this test is the
//! contract. Each scenario exercises convergence plus injected actions
//! (crash, pause, metadata churn) so the fingerprint covers probe
//! scheduling, suspicion timers, gossip dissemination and anomaly
//! handling — not just a quiet steady state.

use std::time::Duration;

use bytes::Bytes;
use lifeguard::core::config::Config;
use lifeguard::sim::cluster::{Cluster, ClusterBuilder, SimAction};
use lifeguard::sim::clock::SimDuration;

/// Canonical string form of everything a run observably produced.
fn fingerprint(c: &Cluster) -> String {
    let mut out = String::new();
    for e in c.trace().events() {
        out.push_str(&format!("{:?}/{}/{:?}\n", e.at, e.reporter, e.event));
    }
    let total = c.telemetry().total();
    out.push_str(&format!("telemetry: {total:?}\n"));
    for i in 0..c.len() {
        let mut rows: Vec<String> = c
            .node(i)
            .members()
            .map(|m| {
                format!(
                    "{}={:?}@{:?}",
                    m.name.as_str(),
                    m.state,
                    m.incarnation
                )
            })
            .collect();
        rows.sort();
        out.push_str(&format!("node {i}: {}\n", rows.join(",")));
    }
    out
}

/// A 12-node run with a crash, an anomaly pause and metadata churn.
fn eventful_run(workers: usize, shards: usize) -> String {
    let mut c = ClusterBuilder::new(12)
        .seed(0xD15C0)
        .config(Config::lan().lifeguard().with_shards(shards))
        .workers(workers)
        .build();
    c.run_for(SimDuration::from_secs(12));
    c.apply(SimAction::UpdateMeta {
        node: 4,
        meta: Bytes::from_static(b"v2"),
    });
    c.apply(SimAction::Pause {
        node: 7,
        duration: Duration::from_millis(900),
    });
    c.run_for(SimDuration::from_secs(8));
    c.apply(SimAction::Crash { node: 11 });
    c.run_for(SimDuration::from_secs(25));
    fingerprint(&c)
}

#[test]
fn trace_and_tables_identical_across_workers_and_shards() {
    let reference = eventful_run(1, 1);
    assert!(
        reference.contains("MemberFailed"),
        "scenario must actually exercise failure detection"
    );
    for workers in [2, 8] {
        assert_eq!(
            reference,
            eventful_run(workers, 1),
            "workers={workers} diverged from serial run"
        );
    }
    for shards in [4, 16] {
        assert_eq!(
            reference,
            eventful_run(1, shards),
            "shards={shards} diverged from single-shard run"
        );
    }
    // Both knobs at once.
    assert_eq!(
        reference,
        eventful_run(8, 16),
        "workers=8/shards=16 diverged"
    );
}

/// Phantom-extended rosters must be just as schedule-independent: the
/// canned phantom responder runs inside the sending lane and its
/// replies commit in canonical order like any other delivery.
fn phantom_run(workers: usize, shards: usize) -> String {
    let mut c = ClusterBuilder::new(6)
        .seed(0xFA111)
        .config(Config::lan().lifeguard().with_shards(shards))
        .full_mesh(true)
        .phantom_members(40)
        .workers(workers)
        .build();
    c.run_for(SimDuration::from_secs(10));
    c.apply(SimAction::UpdateMeta {
        node: 2,
        meta: Bytes::from_static(b"churn"),
    });
    c.run_for(SimDuration::from_secs(10));
    fingerprint(&c)
}

#[test]
fn phantom_rosters_identical_across_workers_and_shards() {
    let reference = phantom_run(1, 1);
    assert!(
        reference.contains("node-45"),
        "roster must include the phantom members"
    );
    assert_eq!(reference, phantom_run(2, 4), "workers=2/shards=4 diverged");
    assert_eq!(reference, phantom_run(8, 16), "workers=8/shards=16 diverged");
}

/// The per-node metrics export must be schedule-independent too: the
/// exact same `Snapshot` (core protocol counters, histograms and sim
/// I/O accounting) at every worker and shard count, and therefore the
/// same aggregated dashboard.
#[test]
fn metrics_snapshots_identical_across_workers_and_shards() {
    use lifeguard::metrics::Aggregate;

    let run = |workers: usize, shards: usize| {
        let mut c = ClusterBuilder::new(10)
            .seed(0x5EED5)
            .config(Config::lan().lifeguard().with_shards(shards))
            .workers(workers)
            .build();
        c.run_for(SimDuration::from_secs(10));
        c.apply(SimAction::Crash { node: 9 });
        c.run_for(SimDuration::from_secs(20));
        let snaps: Vec<_> = (0..c.len()).map(|i| c.metrics_snapshot(i)).collect();
        let mut agg = Aggregate::new();
        for (i, s) in snaps.iter().enumerate() {
            agg.add(&format!("node-{i}"), s.clone());
        }
        (snaps, agg.to_json())
    };

    let (ref_snaps, ref_json) = run(1, 1);
    // The scenario must produce non-trivial protocol metrics.
    let merged_failures: u64 = ref_snaps.iter().map(|s| s.core.failures_declared).sum();
    assert!(merged_failures > 0, "scenario produced no failure metrics");
    for (workers, shards) in [(2, 1), (1, 8), (4, 8)] {
        let (snaps, json) = run(workers, shards);
        assert_eq!(
            snaps, ref_snaps,
            "metrics diverged at workers={workers}, shards={shards}"
        );
        assert_eq!(json, ref_json);
    }
}

/// Different seeds must still differ — guards against the fingerprint
/// (or the simulator) collapsing to something seed-independent.
#[test]
fn different_seeds_produce_different_runs() {
    let run = |seed: u64| {
        let mut c = ClusterBuilder::new(6).seed(seed).build();
        c.run_for(SimDuration::from_secs(15));
        fingerprint(&c)
    };
    assert_ne!(run(1), run(2));
}
