//! Run a real Lifeguard cluster over localhost UDP/TCP sockets.
//!
//! Five agents join through a seed, converge, then one leaves
//! gracefully and one is killed; the remaining agents report what they
//! observed. Four agents ride the default single-threaded reactor
//! runtime; the seed runs the legacy threaded runtime to show the two
//! interoperate on the same wire (the runtime is an I/O detail, not a
//! protocol one).
//!
//! ```text
//! cargo run --example udp_cluster
//! ```

use std::time::{Duration, Instant};

use lifeguard::core::config::Config;
use lifeguard::core::event::Event;
use lifeguard::net::agent::{Agent, AgentConfig, Runtime};

/// Speed the protocol up so the demo finishes in ~20 s.
fn fast() -> Config {
    let mut cfg = Config::lan()
        .lifeguard()
        .with_probe_timing(Duration::from_millis(250), Duration::from_millis(120));
    cfg.gossip_interval = Duration::from_millis(60);
    cfg.suspicion_alpha = 3.0;
    cfg.suspicion_beta = 2.0;
    cfg.push_pull_interval = Some(Duration::from_secs(3));
    cfg
}

fn wait_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn main() -> std::io::Result<()> {
    let names = ["alpha", "bravo", "charlie", "delta", "echo"];
    let mut agents = Vec::new();
    for (i, name) in names.iter().enumerate() {
        // The seed runs the legacy threaded runtime, everyone else the
        // default reactor — one group, two I/O runtimes.
        let runtime = if i == 0 {
            Runtime::Threaded
        } else {
            Runtime::Reactor
        };
        agents.push(Agent::start(
            AgentConfig::local(*name)
                .protocol(fast())
                .seed(i as u64)
                .runtime(runtime),
        )?);
    }
    let seed_addr = agents[0].addr();
    println!(
        "seed agent {} listening on {} (threaded runtime; the other {} ride the reactor)",
        names[0],
        seed_addr,
        names.len() - 1
    );
    for agent in &agents[1..] {
        agent.join(&[seed_addr]);
    }

    if !wait_until(Duration::from_secs(15), || {
        agents.iter().all(|a| a.num_alive() == names.len())
    }) {
        eprintln!("cluster failed to converge");
        std::process::exit(1);
    }
    println!("all {} agents see {} alive members\n", names.len(), names.len());

    println!("echo leaves gracefully...");
    let echo = agents.pop().expect("echo exists");
    echo.leave();
    std::thread::sleep(Duration::from_millis(500));
    echo.shutdown();

    println!("delta is killed (no leave)...");
    let delta = agents.pop().expect("delta exists");
    delta.shutdown();

    let observer = &agents[0];
    let ok = wait_until(Duration::from_secs(25), || {
        let mut saw_leave = false;
        let mut saw_fail = false;
        for m in observer.members() {
            match m.name.as_str() {
                "echo" => saw_leave = m.state == lifeguard::proto::MemberState::Left,
                "delta" => saw_fail = m.state == lifeguard::proto::MemberState::Dead,
                _ => {}
            }
        }
        saw_leave && saw_fail
    });
    println!();
    for e in observer.events().try_iter() {
        match e.event {
            Event::MemberJoined { name } => println!("  [{}] {name} joined", e.at),
            Event::MemberSuspected { name, from } => {
                println!("  [{}] {name} suspected (by {from})", e.at)
            }
            Event::MemberFailed { name, .. } => println!("  [{}] {name} FAILED", e.at),
            Event::MemberLeft { name } => println!("  [{}] {name} left gracefully", e.at),
            Event::MemberRecovered { name } => println!("  [{}] {name} recovered", e.at),
            Event::SelfRefuted { incarnation } => {
                println!("  [{}] refuted a suspicion about ourselves (inc {incarnation})", e.at)
            }
        }
    }
    if ok {
        println!("\nalpha correctly distinguished the graceful leave from the crash");
    } else {
        println!("\n(observer had not fully converged before the deadline)");
    }
    for a in agents {
        a.shutdown();
    }
    Ok(())
}
