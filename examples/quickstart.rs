//! Quickstart: run a simulated five-node Lifeguard cluster, crash one
//! node, and watch the failure being detected and disseminated.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Everything below drives the protocol through the shared sans-I/O
//! stack (see `docs/ARCHITECTURE.md`): each simulated node is a
//! `SwimNode` state machine wrapped in the `lifeguard_core::driver::
//! Driver` harness, and the simulator merely delivers `Input`s (ticks,
//! datagrams, stream messages) and carries out the polled outputs over
//! its virtual network. The real UDP/TCP agent (`examples/
//! udp_cluster.rs`) runs the *same* driver — swap `ClusterBuilder` for
//! `lifeguard::net::agent::Agent` and the protocol behaviour is
//! identical, which is exactly the property the paper's evaluation
//! methodology relies on.

use std::time::Duration;

use lifeguard::core::config::Config;
use lifeguard::core::event::Event;
use lifeguard::sim::cluster::{ClusterBuilder, SimAction};

fn main() {
    // Five nodes, all Lifeguard components enabled, fully deterministic.
    let mut cluster = ClusterBuilder::new(5)
        .config(Config::lan().lifeguard())
        .seed(7)
        .build();

    println!("booting 5-node cluster...");
    cluster.run_for(Duration::from_secs(15));
    assert!(cluster.converged(), "cluster should converge in 15 s");
    println!("converged: every node sees {} alive members", cluster.node(0).num_alive());

    println!("\ncrashing node-4...");
    cluster.apply(SimAction::Crash { node: 4 });
    cluster.run_for(Duration::from_secs(30));

    let detect = cluster
        .trace()
        .first_failure_detection("node-4")
        .expect("crash must be detected");
    println!("node-4 first declared failed at t={detect}");

    println!("\nmembership timeline (as observed across the cluster):");
    for e in cluster.trace().events() {
        match &e.event {
            Event::MemberSuspected { name, from } if name.as_str() == "node-4" => {
                println!("  {}  node-{} suspects {name} (accused by {from})", e.at, e.reporter);
            }
            Event::MemberFailed { name, from, .. } if name.as_str() == "node-4" => {
                println!("  {}  node-{} declares {name} failed (per {from})", e.at, e.reporter);
            }
            _ => {}
        }
    }

    let healthy: Vec<usize> = (0..4).collect();
    let dissem = cluster
        .trace()
        .full_dissemination("node-4", &healthy)
        .expect("failure must disseminate");
    println!("\nfully disseminated to all healthy members at t={dissem}");
}
