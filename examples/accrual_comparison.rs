//! The paper's §VII future-work idea, demonstrated: applying local
//! health to a φ-accrual heartbeat detector.
//!
//! A monitor watches 20 peers that send heartbeats every 500 ms. The
//! monitor itself stalls for 12 s (GC pause, CPU starvation). A plain
//! φ-accrual bank accuses every peer; the local-health bank notices
//! that *everyone* looks late simultaneously, blames itself, and
//! accuses no one — while still catching a genuinely dead peer.
//!
//! ```text
//! cargo run --example accrual_comparison
//! ```

use std::time::Duration;

use lifeguard::core::accrual::LocalHealthAccrual;
use lifeguard::core::time::Time;
use lifeguard::proto::NodeName;

const PEERS: usize = 20;
const HEARTBEAT: Duration = Duration::from_millis(500);

fn run(label: &str, s: u32) {
    let mut monitor = LocalHealthAccrual::new(3.0, s);
    let peers: Vec<NodeName> = (0..PEERS).map(|i| NodeName::from(format!("peer-{i}"))).collect();
    for p in &peers {
        monitor.watch(p.clone());
    }

    // Phase 1: one minute of steady heartbeats.
    let mut t = Time::ZERO;
    for _ in 0..120 {
        t += HEARTBEAT;
        for p in &peers {
            monitor.heartbeat(p, t);
        }
        monitor.check(t);
    }

    // Phase 2: peer-7 dies for real; everyone else keeps beating.
    let dead = NodeName::from("peer-7");
    for _ in 0..40 {
        t += HEARTBEAT;
        for p in &peers {
            if *p != dead {
                monitor.heartbeat(p, t);
            }
        }
    }
    let verdicts = monitor.check(t);
    let accused: Vec<String> = verdicts
        .iter()
        .filter(|(_, v)| v.is_suspect())
        .map(|(n, _)| n.to_string())
        .collect();
    println!("{label}: after peer-7 truly dies      -> accused {accused:?}");

    // Phase 3: the *monitor* stalls 12 s. Heartbeats pile up unread
    // (none are recorded during the stall); at resume, every peer
    // looks late at once.
    let resume = t + Duration::from_secs(12);
    let verdicts = monitor.check(resume);
    let accused = verdicts.iter().filter(|(_, v)| v.is_suspect()).count();
    println!(
        "{label}: after a 12 s LOCAL stall       -> accused {accused}/{PEERS} peers (local health score {})",
        monitor.local_health()
    );
}

fn main() {
    println!("phi-accrual failure detection, 20 peers, threshold phi = 3\n");
    run("plain accrual  (S=0)", 0);
    println!();
    run("local health   (S=8)", 8);
    println!(
        "\nThe local-health bank converts a sure mass false-positive into a\nself-diagnosis, exactly as Lifeguard does for SWIM (paper section VII)."
    );
}
