//! Explore the α/β suspicion-timeout trade-off (paper Table VII):
//! lower α/β detect true failures faster but admit more false
//! positives. Runs a small Threshold + Interval workload per tuning and
//! prints the trade-off curve.
//!
//! ```text
//! cargo run --release --example tuning_tradeoff
//! ```

use std::time::Duration;

use lifeguard::core::config::Config;
use lifeguard::experiments::scenario::{IntervalScenario, ThresholdScenario};

const N: usize = 48;

fn main() {
    println!("{N}-node cluster; detection latency vs false positives by (alpha, beta):\n");
    println!("{:>12} {:>16} {:>14}", "(alpha,beta)", "median detect(s)", "FP events");

    for (alpha, beta) in [(2.0, 2.0), (3.0, 4.0), (4.0, 4.0), (5.0, 6.0)] {
        let config = Config::lan().lifeguard().with_alpha(alpha).with_beta(beta);

        // True-failure detection latency: one 20 s anomaly.
        let mut thresh = ThresholdScenario::new(2, Duration::from_secs(20), config.clone(), 11);
        thresh.n = N;
        thresh.run_len = Duration::from_secs(60);
        let t = thresh.run();
        let mut lat: Vec<f64> = t
            .first_detect
            .iter()
            .flatten()
            .map(|d| d.as_secs_f64())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = lat.get(lat.len() / 2).copied();

        // False positives: cyclic 8 s stalls with 64 ms of air.
        let mut interval = IntervalScenario::new(
            4,
            Duration::from_secs(8),
            Duration::from_millis(64),
            config,
            11,
        );
        interval.n = N;
        interval.min_run = Duration::from_secs(60);
        let i = interval.run();

        let median = median
            .map(|m| format!("{m:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>12} {:>16} {:>14}",
            format!("({alpha:.0},{beta:.0})"),
            median,
            i.fp_events
        );
    }
    println!("\nlower (alpha,beta): faster detection, more false positives — the paper's Table VII.");
}
