//! The motivating scenario from the paper's introduction: a fleet where
//! a few members suffer intermittent overload (web servers under bursty
//! traffic, transcode boxes with oversubscribed CPUs...). With plain
//! SWIM, healthy-but-slow members "flap" — they oscillate between failed
//! and alive, triggering costly failovers. Lifeguard suppresses the
//! false positives.
//!
//! Runs the same workload twice (SWIM, then Lifeguard) and compares
//! false-positive counts.
//!
//! ```text
//! cargo run --release --example flapping_cluster
//! ```

use std::time::Duration;

use lifeguard::core::config::Config;
use lifeguard::core::time::Time;
use lifeguard::sim::anomaly::AnomalySpec;
use lifeguard::sim::cluster::ClusterBuilder;
use lifeguard::sim::network::NetworkConfig;

const N: usize = 48;
const OVERLOADED: [usize; 4] = [5, 17, 23, 41];

fn run(label: &str, config: Config) -> (u64, u64) {
    let mut builder = ClusterBuilder::new(N)
        .config(config)
        .network(NetworkConfig::loopback())
        .seed(2024);
    // Each overloaded member blocks for 12 s, runs for 50 ms, repeatedly:
    // the signature of a process starved by load spikes.
    for &node in &OVERLOADED {
        builder = builder.anomaly(
            node,
            AnomalySpec::Interval {
                start: Time::from_secs(15),
                duration: Duration::from_secs(12),
                interval: Duration::from_millis(50),
                until: Time::from_secs(90),
            },
        );
    }
    let mut cluster = builder.build();
    cluster.run_for(Duration::from_secs(110));

    // A false positive is a failure declaration about a member that is
    // NOT one of the overloaded ones (the overloaded ones are slow, not
    // dead — declaring them failed is also wrong, but that is the
    // paper's separate "flapping" cost).
    let mut fp = 0u64;
    let mut flaps = 0u64;
    for (_, _, subject) in cluster.trace().failures() {
        let idx: usize = subject.as_str().strip_prefix("node-").unwrap().parse().unwrap();
        if OVERLOADED.contains(&idx) {
            flaps += 1;
        } else {
            fp += 1;
        }
    }
    println!("{label:>10}: {fp:>5} false positives about healthy members, {flaps:>5} declarations about overloaded members");
    (fp, flaps)
}

fn main() {
    println!(
        "{N}-node cluster, {} members with intermittent 12 s stalls:\n",
        OVERLOADED.len()
    );
    let (fp_swim, _) = run("SWIM", Config::lan());
    let (fp_lg, _) = run("Lifeguard", Config::lan().lifeguard());
    println!();
    if fp_lg < fp_swim {
        let factor = fp_swim as f64 / fp_lg.max(1) as f64;
        println!("Lifeguard reduced false positives about healthy members by {factor:.0}x");
    } else {
        println!("(no reduction at this seed — try a different one)");
    }
}
